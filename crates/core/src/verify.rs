//! Independent checking of the engine's answers: inductive-invariant
//! certificates and counterexample traces.

use crate::Certificate;
use plic3_aig::Aig;
use plic3_logic::Lit;
use plic3_sat::{SatResult, Solver};
use plic3_ts::{Trace, TransitionSystem, Unroller};

/// Checks that a [`Certificate`] really is an inductive strengthening of the
/// property, using fresh SAT queries that do not share any state with the IC3
/// engine that produced it.
///
/// With `INV = lemmas ∧ P` (where `P = ¬bad`), the three conditions of
/// Section 2.2 of the paper are verified:
///
/// 1. `I ⇒ INV` — every lemma cube excludes the initial cube (syntactic) and
///    no initial state is bad,
/// 2. `INV ∧ T ⇒ INV'` — for every lemma and for the property itself,
/// 3. `INV ⇒ P` — immediate from the construction of `INV`.
///
/// # Errors
///
/// Returns a human-readable description of the first violated condition.
///
/// # Example
///
/// ```
/// use plic3::{Config, Ic3, verify_certificate};
/// use plic3_aig::AigBuilder;
///
/// let mut b = AigBuilder::new();
/// let s = b.latch(Some(false));
/// b.set_latch_next(s, s);
/// b.add_bad(s);
/// let mut engine = Ic3::from_aig(&b.build(), Config::ric3_like());
/// let result = engine.check();
/// let cert = result.certificate().expect("safe circuit");
/// verify_certificate(engine.ts(), cert).expect("certificate is valid");
/// ```
pub fn verify_certificate(ts: &TransitionSystem, cert: &Certificate) -> Result<(), String> {
    // Condition 1a: each lemma is over state variables and holds initially.
    for (i, clause) in cert.lemmas.iter().enumerate() {
        let cube = clause.negate();
        if cube.iter().any(|l| !ts.is_latch_var(l.var())) {
            return Err(format!(
                "lemma {i} ({clause}) mentions a non-state variable"
            ));
        }
        if ts.cube_intersects_init(&cube) {
            return Err(format!(
                "lemma {i} ({clause}) does not hold in the initial states"
            ));
        }
    }

    // Build a two-frame unrolling: frame 0 constrained by the invariant, frame 1
    // used to evaluate the lemmas and the property after one step.
    let unroller = Unroller::new(ts);
    let mut solver = Solver::new();
    solver.ensure_vars(unroller.num_vars_through(1));
    for clause in unroller.trans_clauses(0) {
        solver.add_clause_ref(&clause);
    }
    for clause in unroller.trans_clauses(1) {
        solver.add_clause_ref(&clause);
    }
    for clause in &cert.lemmas {
        solver.add_clause(clause.iter().map(|l| unroller.lit_at(0, l)));
    }
    // The antecedent also contains the property (INV includes P).
    let not_bad_now: Vec<Lit> = vec![!unroller.lit_at(0, ts.bad_lit())];

    // Condition 1b: no initial state is bad.
    {
        let mut init_solver = Solver::new();
        init_solver.ensure_vars(ts.num_vars());
        for clause in ts.trans() {
            init_solver.add_clause_ref(clause);
        }
        for clause in ts.init_cnf() {
            init_solver.add_clause_ref(clause);
        }
        if init_solver.solve(&ts.bad_assumptions()) == SatResult::Sat {
            return Err("an initial state violates the property".to_string());
        }
    }

    // Condition 2: consecution for every lemma.
    for (i, clause) in cert.lemmas.iter().enumerate() {
        let violated_next = clause.negate();
        let mut assumptions = not_bad_now.clone();
        assumptions.extend(violated_next.iter().map(|l| unroller.lit_at(1, l)));
        if solver.solve(&assumptions) == SatResult::Sat {
            return Err(format!(
                "lemma {i} ({clause}) is not preserved by the transition relation"
            ));
        }
    }

    // Condition 2 for the property itself: INV ∧ T ⇒ P'.
    let mut assumptions = not_bad_now;
    assumptions.push(unroller.lit_at(1, ts.bad_lit()));
    for &c in ts.constraint_lits() {
        assumptions.push(unroller.lit_at(1, c));
    }
    if solver.solve(&assumptions) == SatResult::Sat {
        return Err("the invariant does not imply the property after one step".to_string());
    }

    Ok(())
}

/// Replays a counterexample [`Trace`] on the original circuit and returns
/// `true` if it indeed reaches a bad state.
///
/// This is a thin wrapper over [`Trace::replay_on_aig`], provided here so the
/// verification entry points live side by side.
pub fn verify_trace(ts: &TransitionSystem, aig: &Aig, trace: &Trace) -> bool {
    trace.replay_on_aig(ts, aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Ic3};
    use plic3_aig::AigBuilder;
    use plic3_logic::{Clause, Cube, Lit};

    fn safe_counter() -> Aig {
        // A 3-bit counter saturating at 5; bad at 7 (unreachable).
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let at5 = b.vec_equals_const(&state, 5);
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            let held = b.ite(at5, *s, *n);
            b.set_latch_next(*s, held);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn accepts_genuine_certificates() {
        let aig = safe_counter();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let cert = result.certificate().expect("safe");
        verify_certificate(engine.ts(), cert).expect("valid");
    }

    #[test]
    fn rejects_certificates_violating_initiation() {
        let aig = safe_counter();
        let ts = TransitionSystem::from_aig(&aig);
        // The clause ¬(all latches 0) is false in the initial state.
        let bogus = Certificate {
            lemmas: vec![Clause::from_lits((0..3).map(|i| Lit::pos(ts.latch_var(i))))],
            level: 1,
        };
        let err = verify_certificate(&ts, &bogus).unwrap_err();
        assert!(err.contains("initial"));
    }

    #[test]
    fn rejects_certificates_violating_consecution() {
        let aig = safe_counter();
        let ts = TransitionSystem::from_aig(&aig);
        // "Counter never reaches 1" is initially true but not inductive.
        let bogus = Certificate {
            lemmas: vec![Cube::from_lits([
                Lit::pos(ts.latch_var(0)),
                Lit::neg(ts.latch_var(1)),
                Lit::neg(ts.latch_var(2)),
            ])
            .negate()],
            level: 1,
        };
        let err = verify_certificate(&ts, &bogus).unwrap_err();
        assert!(err.contains("not preserved"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_lemmas_over_non_state_variables() {
        let aig = safe_counter();
        let ts = TransitionSystem::from_aig(&aig);
        let bogus = Certificate {
            lemmas: vec![Clause::unit(Lit::neg(ts.primed_var(0)))],
            level: 1,
        };
        let err = verify_certificate(&ts, &bogus).unwrap_err();
        assert!(err.contains("non-state"));
    }

    #[test]
    fn rejects_empty_certificate_for_non_inductive_property() {
        // For the plain 3-bit counter with bad at 7, the property is not
        // inductive on its own, so the empty certificate must be rejected.
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        let ts = TransitionSystem::from_aig(&b.build());
        let err = verify_certificate(&ts, &Certificate::default()).unwrap_err();
        assert!(err.contains("after one step"));
    }

    #[test]
    fn trace_verification_delegates_to_replay() {
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.add_bad(s);
        let aig = b.build();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let trace = result.trace().expect("toggle reaches bad");
        assert!(verify_trace(engine.ts(), &aig, trace));
        assert!(!verify_trace(engine.ts(), &aig, &Trace::default()));
    }
}
