//! Results of a model-checking run: safety certificates, counterexamples, or
//! resource exhaustion.

use plic3_logic::{Clause, Cnf};
use plic3_ts::Trace;
use std::fmt;

/// A proof of safety: an inductive invariant strengthening the property.
///
/// The invariant is the conjunction of the stored [`Clause`]s together with the
/// property `P = ¬bad`; [`crate::verify_certificate`] checks the three
/// conditions of Section 2.2 of the paper.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Certificate {
    /// The lemma clauses over the current-state variables.
    pub lemmas: Vec<Clause>,
    /// The frame level at which the fixpoint `F_i = F_{i+1}` was detected.
    pub level: usize,
}

impl Certificate {
    /// The invariant as a CNF formula (lemmas only; conjoin with the property
    /// to obtain the full inductive invariant).
    pub fn to_cnf(&self) -> Cnf {
        Cnf::from_clauses(self.lemmas.iter().cloned())
    }

    /// Number of lemma clauses.
    pub fn len(&self) -> usize {
        self.lemmas.len()
    }

    /// Returns `true` if the certificate has no lemmas (the property alone is
    /// inductive).
    pub fn is_empty(&self) -> bool {
        self.lemmas.is_empty()
    }
}

/// Why a run stopped without a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnknownReason {
    /// The wall-clock budget was exhausted.
    Timeout,
    /// The SAT-conflict budget was exhausted.
    ConflictLimit,
    /// The frame budget was exhausted.
    FrameLimit,
    /// The run was cancelled through the configuration's
    /// [`StopFlag`](plic3_sat::StopFlag) (e.g. by a portfolio runner's
    /// watchdog).
    Cancelled,
    /// The memory budget ([`ResourceBudget`](plic3_sat::ResourceBudget)) was
    /// exhausted: the run was abandoned gracefully instead of letting the
    /// allocator abort the process.
    MemoryOut,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::Timeout => write!(f, "timeout"),
            UnknownReason::ConflictLimit => write!(f, "conflict limit"),
            UnknownReason::FrameLimit => write!(f, "frame limit"),
            UnknownReason::Cancelled => write!(f, "cancelled"),
            UnknownReason::MemoryOut => write!(f, "memory out"),
        }
    }
}

/// The verdict of a model-checking run.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckResult {
    /// The property holds; the certificate contains the inductive invariant.
    Safe(Certificate),
    /// The property is violated; the trace is a counterexample execution.
    Unsafe(Trace),
    /// No verdict within the configured resource limits.
    Unknown(UnknownReason),
}

impl CheckResult {
    /// Returns `true` for [`CheckResult::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, CheckResult::Safe(_))
    }

    /// Returns `true` for [`CheckResult::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, CheckResult::Unsafe(_))
    }

    /// Returns `true` for [`CheckResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, CheckResult::Unknown(_))
    }

    /// The certificate, if the result is [`CheckResult::Safe`].
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            CheckResult::Safe(cert) => Some(cert),
            _ => None,
        }
    }

    /// The counterexample trace, if the result is [`CheckResult::Unsafe`].
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            CheckResult::Unsafe(trace) => Some(trace),
            _ => None,
        }
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckResult::Safe(cert) => write!(f, "safe ({} lemmas)", cert.len()),
            CheckResult::Unsafe(trace) => write!(f, "unsafe ({} steps)", trace.len()),
            CheckResult::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::{Lit, Var};

    #[test]
    fn certificate_accessors() {
        let cert = Certificate {
            lemmas: vec![Clause::unit(Lit::neg(Var::new(0)))],
            level: 3,
        };
        assert_eq!(cert.len(), 1);
        assert!(!cert.is_empty());
        assert_eq!(cert.to_cnf().len(), 1);
        assert!(Certificate::default().is_empty());
    }

    #[test]
    fn result_predicates_and_accessors() {
        let safe = CheckResult::Safe(Certificate::default());
        let unsafe_ = CheckResult::Unsafe(Trace::default());
        let unknown = CheckResult::Unknown(UnknownReason::Timeout);
        assert!(safe.is_safe() && !safe.is_unsafe() && !safe.is_unknown());
        assert!(unsafe_.is_unsafe());
        assert!(unknown.is_unknown());
        assert!(safe.certificate().is_some());
        assert!(safe.trace().is_none());
        assert!(unsafe_.trace().is_some());
        assert!(unsafe_.certificate().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            CheckResult::Safe(Certificate::default()).to_string(),
            "safe (0 lemmas)"
        );
        assert_eq!(
            CheckResult::Unknown(UnknownReason::ConflictLimit).to_string(),
            "unknown (conflict limit)"
        );
        assert_eq!(
            CheckResult::Unsafe(Trace::default()).to_string(),
            "unsafe (0 steps)"
        );
        assert_eq!(UnknownReason::FrameLimit.to_string(), "frame limit");
        assert_eq!(UnknownReason::Timeout.to_string(), "timeout");
    }
}
