//! Run statistics, including the success rates reported in Table 2 of the paper.

use std::fmt;
use std::time::Duration;

/// Counters collected during an [`crate::Ic3::check`] run.
///
/// The four counters of Section 4.3 of the paper are tracked explicitly so the
/// harness can compute the same success rates:
///
/// * `N_g`  — [`Statistics::generalizations`], total generalization calls,
/// * `N_p`  — [`Statistics::predictions`], SAT queries spent validating
///   predicted lemmas,
/// * `N_sp` — [`Statistics::successful_predictions`], predictions that produced
///   a lemma (and therefore skipped literal dropping),
/// * `N_fp` — [`Statistics::found_failed_parents`], generalizations for which a
///   failed-push parent lemma (and hence a CTP) was available.
///
/// The derived rates are `SR_lp = N_sp / N_p`, `SR_fp = N_fp / N_g` and
/// `SR_adv = N_sp / N_g`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Statistics {
    /// `N_g`: number of calls to the generalization procedure.
    pub generalizations: u64,
    /// `N_p`: number of SAT queries made while validating predicted lemmas.
    pub predictions: u64,
    /// `N_sp`: number of generalizations resolved by a successful prediction.
    pub successful_predictions: u64,
    /// `N_fp`: number of generalizations that found a failed-push parent lemma.
    pub found_failed_parents: u64,
    /// Number of relative-induction SAT queries (all purposes).
    pub relative_queries: u64,
    /// Number of SAT queries used to lift predecessor states.
    pub lift_queries: u64,
    /// Number of literal-drop attempts during MIC.
    pub mic_drop_attempts: u64,
    /// Number of literal-drop attempts that succeeded.
    pub mic_drops: u64,
    /// Number of counterexamples to generalization blocked by `ctgDown`.
    pub ctg_blocked: u64,
    /// Number of proof obligations processed by the blocking phase.
    pub obligations: u64,
    /// Number of lemmas added to the frames.
    pub lemmas_added: u64,
    /// Number of lemmas pushed forward during propagation phases.
    pub lemmas_propagated: u64,
    /// Number of push failures recorded in the `failure_push` table.
    pub push_failures_recorded: u64,
    /// Number of pushed lemmas handed to the configured lemma sink (portfolio
    /// lemma sharing; zero when no sink is installed).
    pub lemmas_exported: u64,
    /// Number of foreign lemmas adopted after passing the local consecution
    /// re-check (portfolio lemma sharing; zero when no source is installed).
    pub lemmas_imported: u64,
    /// Number of foreign lemmas rejected by the initiation or consecution
    /// re-check. A non-zero count is not an error: foreign lemmas are proved
    /// relative to the *sender's* frames and may simply not hold here yet.
    pub lemmas_import_rejected: u64,
    /// Highest frame level reached.
    pub max_level: usize,
    /// Aggregated SAT-solver conflicts across all frame solvers.
    pub sat_conflicts: u64,
    /// Total wall-clock time of the run.
    pub runtime: Duration,
    /// Wall-clock time spent inside generalization (including prediction).
    pub generalize_time: Duration,
    /// Bytes charged against the run's [`plic3_sat::ResourceBudget`] when the
    /// run ended (clause arenas, learnt DBs, the frame lemma store). For a
    /// run that ended in `Unknown(MemoryOut)` this is the figure that tripped
    /// the budget.
    pub memory_used: u64,
    /// The budget's byte limit, if one was configured (`None` = unlimited).
    pub memory_limit: Option<u64>,
    /// Number of lemma clauses in the final invariant certificate (zero unless
    /// the run ended `Safe`).
    pub certificate_lemmas: u64,
    /// Wall-clock time of the engine's certificate self-check
    /// ([`crate::Config::certify`]); zero when the self-check is off or the
    /// run did not end `Safe`.
    pub certify_time: Duration,
}

impl Statistics {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lemma-prediction success rate `SR_lp = N_sp / N_p`.
    ///
    /// Returns `None` when no prediction query was ever made.
    pub fn sr_lp(&self) -> Option<f64> {
        ratio(self.successful_predictions, self.predictions)
    }

    /// The failed-parent discovery rate `SR_fp = N_fp / N_g`.
    ///
    /// Returns `None` when no generalization was performed.
    pub fn sr_fp(&self) -> Option<f64> {
        ratio(self.found_failed_parents, self.generalizations)
    }

    /// The rate of generalizations that avoided dropping variables,
    /// `SR_adv = N_sp / N_g`.
    ///
    /// Returns `None` when no generalization was performed.
    pub fn sr_adv(&self) -> Option<f64> {
        ratio(self.successful_predictions, self.generalizations)
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

impl fmt::Display for Statistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "level={} lemmas={} obligations={} relative_queries={}",
            self.max_level, self.lemmas_added, self.obligations, self.relative_queries
        )?;
        writeln!(
            f,
            "generalizations={} predictions={} successful_predictions={} found_failed_parents={}",
            self.generalizations,
            self.predictions,
            self.successful_predictions,
            self.found_failed_parents
        )?;
        if self.lemmas_exported + self.lemmas_imported + self.lemmas_import_rejected > 0 {
            writeln!(
                f,
                "lemmas_exported={} lemmas_imported={} lemmas_import_rejected={}",
                self.lemmas_exported, self.lemmas_imported, self.lemmas_import_rejected
            )?;
        }
        if self.certificate_lemmas > 0 {
            writeln!(
                f,
                "certificate_lemmas={} certify_time={:.3}s",
                self.certificate_lemmas,
                self.certify_time.as_secs_f64()
            )?;
        }
        write!(
            f,
            "SR_lp={} SR_fp={} SR_adv={} runtime={:.3}s",
            fmt_rate(self.sr_lp()),
            fmt_rate(self.sr_fp()),
            fmt_rate(self.sr_adv()),
            self.runtime.as_secs_f64()
        )
    }
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.2}%", 100.0 * r),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_the_paper_definitions() {
        let stats = Statistics {
            generalizations: 200,
            predictions: 100,
            successful_predictions: 40,
            found_failed_parents: 80,
            ..Statistics::new()
        };
        assert!((stats.sr_lp().expect("defined") - 0.40).abs() < 1e-12);
        assert!((stats.sr_fp().expect("defined") - 0.40).abs() < 1e-12);
        assert!((stats.sr_adv().expect("defined") - 0.20).abs() < 1e-12);
    }

    #[test]
    fn rates_are_none_when_denominator_is_zero() {
        let stats = Statistics::new();
        assert_eq!(stats.sr_lp(), None);
        assert_eq!(stats.sr_fp(), None);
        assert_eq!(stats.sr_adv(), None);
    }

    #[test]
    fn display_reports_the_key_counters() {
        let stats = Statistics {
            generalizations: 10,
            predictions: 5,
            successful_predictions: 2,
            ..Statistics::new()
        };
        let text = stats.to_string();
        assert!(text.contains("generalizations=10"));
        assert!(text.contains("SR_lp=40.00%"));
        assert!(text.contains("SR_adv=20.00%"));
        assert!(text.contains("SR_fp=n/a") || text.contains("SR_fp=0.00%"));
    }
}
