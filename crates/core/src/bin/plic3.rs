//! `plic3` — command-line safety model checker for AIGER circuits.
//!
//! ```text
//! plic3 <circuit.aag|circuit.aig> [OPTIONS]
//!
//! Options:
//!   --config <name>    ric3 | ric3-pl (default) | ic3ref | ic3ref-pl | cav23 | pdr
//!   --timeout <secs>   wall-clock budget (default: unlimited)
//!   --witness          print the counterexample / the inductive invariant
//!   --stats            print engine statistics
//! ```
//!
//! Exit codes follow the HWMCC convention: `20` when the property is proved,
//! `10` when a counterexample is found, `0` when no verdict was reached within
//! the budget, `2` on usage or input errors.

use plic3::{verify_certificate, verify_trace, CheckResult, Config, Ic3};
use plic3_aig::parse_aiger;
use plic3_ts::TransitionSystem;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    path: String,
    config: Config,
    timeout: Option<Duration>,
    witness: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: plic3 <circuit.aag|circuit.aig> [--config ric3|ric3-pl|ic3ref|ic3ref-pl|cav23|pdr] \
         [--timeout <secs>] [--witness] [--stats]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut path = None;
    let mut config = Config::ric3_like().with_lemma_prediction(true);
    let mut timeout = None;
    let mut witness = false;
    let mut stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let name = args.next().unwrap_or_else(|| usage());
                config = match name.as_str() {
                    "ric3" => Config::ric3_like(),
                    "ric3-pl" => Config::ric3_like().with_lemma_prediction(true),
                    "ic3ref" => Config::ic3ref_like(),
                    "ic3ref-pl" => Config::ic3ref_like().with_lemma_prediction(true),
                    "cav23" => Config::cav23_like(),
                    "pdr" => Config::pdr_like(),
                    _ => usage(),
                };
            }
            "--timeout" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--witness" => witness = true,
            "--stats" => stats = true,
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    Options {
        path,
        config,
        timeout,
        witness,
        stats,
    }
}

fn main() -> ExitCode {
    let options = parse_args();
    let bytes = match std::fs::read(&options.path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", options.path);
            return ExitCode::from(2);
        }
    };
    let aig = match parse_aiger(&bytes) {
        Ok(aig) => aig,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{}: {aig}", options.path);
    let mut config = options.config;
    if let Some(timeout) = options.timeout {
        config = config.with_max_time(timeout);
    }
    let ts = TransitionSystem::from_aig(&aig);
    eprintln!("{ts}");
    let mut engine = Ic3::new(ts, config);
    let result = engine.check();
    if options.stats {
        eprintln!("{}", engine.statistics());
    }
    match result {
        CheckResult::Safe(certificate) => {
            if let Err(e) = verify_certificate(engine.ts(), &certificate) {
                eprintln!("internal error: certificate rejected: {e}");
                return ExitCode::from(2);
            }
            println!("0");
            println!("b0");
            if options.witness {
                for clause in &certificate.lemmas {
                    eprintln!("invariant lemma: {clause}");
                }
            }
            eprintln!("result: safe ({} lemmas)", certificate.len());
            ExitCode::from(20)
        }
        CheckResult::Unsafe(trace) => {
            if !verify_trace(engine.ts(), &aig, &trace) {
                eprintln!("internal error: counterexample does not replay");
                return ExitCode::from(2);
            }
            println!("1");
            println!("b0");
            if options.witness {
                eprintln!("{}", trace.render(engine.ts()));
            }
            eprintln!("result: unsafe ({} steps)", trace.len());
            ExitCode::from(10)
        }
        CheckResult::Unknown(reason) => {
            println!("2");
            eprintln!("result: unknown ({reason})");
            ExitCode::SUCCESS
        }
    }
}
