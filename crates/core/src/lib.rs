//! `plic3` — an IC3/PDR safety model checker with CTP-based lemma prediction.
//!
//! This crate is the core of a from-scratch Rust reproduction of
//! *Predicting Lemmas in Generalization of IC3* (Su, Yang, Ci — DAC 2024).
//! It implements:
//!
//! * the standard IC3/PDR algorithm (Algorithm 1 of the paper): frames in
//!   delta encoding, a recursive blocking phase with predecessor lifting,
//!   MIC / `ctgDown` inductive generalization, and lemma propagation,
//! * the paper's contribution (Algorithm 2): a `failure_push` table recording
//!   **counterexamples to propagation (CTP)**, and a prediction step that
//!   grows a failed parent lemma by a single literal of the *diff set*
//!   `diff(b, t)` to obtain a candidate lemma validated by one SAT query —
//!   skipping the literal-dropping loop entirely when it succeeds,
//! * the CAV'23 parent-guided literal ordering used as a comparison point,
//! * statistics matching the paper's `SR_lp`, `SR_fp` and `SR_adv` rates, and
//! * independent certificate and counterexample checking.
//!
//! # Quick start
//!
//! ```
//! use plic3::{Config, Ic3, verify_certificate};
//! use plic3_aig::AigBuilder;
//!
//! // A token that rotates around a 4-cell ring; two adjacent cells can never
//! // both hold it.
//! let mut b = AigBuilder::new();
//! let cells: Vec<_> = (0..4).map(|i| b.latch(Some(i == 0))).collect();
//! for i in 0..4 {
//!     b.set_latch_next(cells[i], cells[(i + 3) % 4]);
//! }
//! let mut clashes = Vec::new();
//! for i in 0..4 {
//!     let clash = b.and(cells[i], cells[(i + 1) % 4]);
//!     clashes.push(clash);
//! }
//! let bad = b.or_many(&clashes);
//! b.add_bad(bad);
//!
//! let config = Config::ric3_like().with_lemma_prediction(true);
//! let mut engine = Ic3::from_aig(&b.build(), config);
//! let result = engine.check();
//! let certificate = result.certificate().expect("the ring is safe");
//! verify_certificate(engine.ts(), certificate).expect("independently checked");
//! println!("prediction success rate: {:?}", engine.statistics().sr_adv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod frames;
mod generalize;
mod predict;
mod result;
mod statistics;
mod verify;

pub use config::{Config, GeneralizeMode, Limits, LiteralOrdering};
pub use engine::{Ic3, LemmaSink, LemmaSource};
pub use plic3_sat::{
    FaultKind, FaultPlan, FaultSite, ResourceBudget, RestartPolicy, SearchConfig, StopFlag,
    INJECTED_PANIC,
};
pub use result::{Certificate, CheckResult, UnknownReason};
pub use statistics::Statistics;
pub use verify::{verify_certificate, verify_trace};
