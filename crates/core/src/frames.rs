//! The frame sequence `F_1, …, F_k` in delta encoding.

use plic3_logic::Cube;
use plic3_sat::ResourceBudget;

/// Estimated heap footprint of a stored lemma cube: its literal payload plus
/// the `Vec` bookkeeping. Used for [`ResourceBudget`] accounting — an estimate
/// is enough, the budget is advisory.
fn cube_bytes(cube: &Cube) -> u64 {
    (cube.len() * std::mem::size_of::<plic3_logic::Lit>() + 24) as u64
}

/// The IC3 frame sequence, stored in *delta encoding*: each blocked cube is
/// kept once, at the highest level its lemma currently holds at. The clause set
/// of frame `F_i` is therefore the union of the delta frames at levels `≥ i`
/// (lemmas are monotone: `F_{i+1} ⊆ F_i`).
///
/// Lemmas are represented by the blocked [`Cube`] (the lemma itself is the
/// negation of the cube). Subsumption is maintained on insertion: a new, more
/// general lemma removes the less general ones it covers at levels it reaches.
#[derive(Clone, Debug, Default)]
pub struct Frames {
    /// `delta[i]` holds the cubes whose lemma's highest level is exactly `i`.
    /// Index 0 exists for convenience but is never used (`F_0 = I`).
    delta: Vec<Vec<Cube>>,
    /// Memory budget charged for every stored lemma (unlimited by default).
    budget: ResourceBudget,
}

impl Frames {
    /// Creates the initial frame sequence with `F_1` as the top frame.
    pub fn new() -> Self {
        Frames {
            delta: vec![Vec::new(), Vec::new()],
            budget: ResourceBudget::unlimited(),
        }
    }

    /// Creates the initial frame sequence charging lemma storage to `budget`.
    pub fn with_budget(budget: ResourceBudget) -> Self {
        Frames {
            budget,
            ..Frames::new()
        }
    }

    /// The current top level `k`.
    pub fn top_level(&self) -> usize {
        self.delta.len() - 1
    }

    /// Adds a new, empty top frame and returns its level.
    pub fn push_frame(&mut self) -> usize {
        self.delta.push(Vec::new());
        self.top_level()
    }

    /// The cubes stored at exactly `level` (i.e. `F_level \ F_{level+1}`).
    pub fn delta(&self, level: usize) -> &[Cube] {
        &self.delta[level]
    }

    /// Iterates over all cubes belonging to `F_level` (levels `≥ level`).
    pub fn cubes_at_or_above(&self, level: usize) -> impl Iterator<Item = &Cube> {
        self.delta[level.min(self.delta.len())..]
            .iter()
            .flat_map(|v| v.iter())
    }

    /// Total number of stored lemmas.
    pub fn total_lemmas(&self) -> usize {
        self.delta.iter().map(Vec::len).sum()
    }

    /// Returns `true` if a stored lemma at level `≥ level` already subsumes the
    /// lemma `¬cube` (i.e. a stored cube is a subset of `cube`).
    pub fn subsumed(&self, cube: &Cube, level: usize) -> bool {
        self.cubes_at_or_above(level).any(|c| c.subsumes(cube))
    }

    /// Adds the blocked `cube` at `level`, removing lemmas it subsumes at levels
    /// `1..=level`. Returns `false` (and stores nothing) if an existing lemma at
    /// level `≥ level` already subsumes it.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds the top level.
    pub fn add(&mut self, cube: Cube, level: usize) -> bool {
        assert!(
            level >= 1 && level <= self.top_level(),
            "lemma level out of range"
        );
        if self.subsumed(&cube, level) {
            return false;
        }
        for l in 1..=level {
            let budget = &self.budget;
            self.delta[l].retain(|existing| {
                let keep = !cube.subsumes(existing);
                if !keep {
                    budget.uncharge(cube_bytes(existing));
                }
                keep
            });
        }
        self.budget.charge(cube_bytes(&cube));
        self.delta[level].push(cube);
        true
    }

    /// Moves `cube` from `level` to `level + 1` (used by propagation). Returns
    /// `true` if the cube was found and promoted.
    pub fn promote(&mut self, cube: &Cube, level: usize) -> bool {
        if let Some(pos) = self.delta[level].iter().position(|c| c == cube) {
            let cube = self.delta[level].remove(pos);
            // Promotion cannot make the lemma newly-subsumed at the higher level
            // unless an equal or more general lemma already lives there; keep the
            // stronger one.
            if !self.subsumed(&cube, level + 1) {
                self.delta[level + 1].push(cube);
            } else {
                self.budget.uncharge(cube_bytes(&cube));
            }
            true
        } else {
            false
        }
    }

    /// The parent lemmas of the clause `¬cube` at `level`, per Algorithm 2 of
    /// the paper: the cubes stored at exactly `level` whose literal set is a
    /// subset of `cube`'s (equivalently, lemmas `p` with `p ⇒ ¬cube`).
    pub fn parents_of(&self, cube: &Cube, level: usize) -> Vec<Cube> {
        if level == 0 || level >= self.delta.len() {
            return Vec::new();
        }
        self.delta[level]
            .iter()
            .filter(|p| p.subsumes(cube))
            .cloned()
            .collect()
    }

    /// Returns `true` if the delta frame at `level` is empty, i.e.
    /// `F_level = F_{level+1}` and an inductive invariant has been reached.
    pub fn is_fixpoint_at(&self, level: usize) -> bool {
        self.delta[level].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::{Lit, Var};

    fn cube(lits: &[(u32, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::new(Var::new(v), p)))
    }

    #[test]
    fn new_has_one_usable_frame() {
        let f = Frames::new();
        assert_eq!(f.top_level(), 1);
        assert_eq!(f.total_lemmas(), 0);
        assert!(f.is_fixpoint_at(1));
    }

    #[test]
    fn add_and_query_levels() {
        let mut f = Frames::new();
        f.push_frame();
        f.push_frame(); // top = 3
        assert!(f.add(cube(&[(0, true), (1, false)]), 2));
        assert!(f.add(cube(&[(2, true)]), 3));
        assert_eq!(f.delta(2).len(), 1);
        assert_eq!(f.delta(3).len(), 1);
        // F_2 contains lemmas at levels >= 2.
        assert_eq!(f.cubes_at_or_above(2).count(), 2);
        assert_eq!(f.cubes_at_or_above(3).count(), 1);
        assert_eq!(f.total_lemmas(), 2);
        assert!(!f.is_fixpoint_at(2));
    }

    #[test]
    fn subsumption_on_insert() {
        let mut f = Frames::new();
        f.push_frame(); // top = 2
        assert!(f.add(cube(&[(0, true), (1, false)]), 1));
        // A more general lemma (fewer literals) at a level covering level 1
        // removes the weaker one.
        assert!(f.add(cube(&[(0, true)]), 2));
        assert_eq!(f.total_lemmas(), 1);
        assert_eq!(f.delta(2).len(), 1);
        // A weaker lemma subsumed by an existing one is rejected.
        assert!(!f.add(cube(&[(0, true), (2, true)]), 1));
        assert_eq!(f.total_lemmas(), 1);
    }

    #[test]
    fn weaker_lemma_at_higher_level_is_kept() {
        let mut f = Frames::new();
        f.push_frame(); // top = 2
        assert!(f.add(cube(&[(0, true)]), 1));
        // The same cube cannot be re-added at level 1, but at level 2 the
        // stronger statement is new (the existing lemma only covers F_1).
        assert!(!f.add(cube(&[(0, true)]), 1));
        assert!(f.add(cube(&[(0, true)]), 2));
        assert_eq!(f.delta(2).len(), 1);
        assert_eq!(f.delta(1).len(), 0, "old copy must be removed");
    }

    #[test]
    fn promote_moves_between_levels() {
        let mut f = Frames::new();
        f.push_frame();
        let c = cube(&[(0, true)]);
        f.add(c.clone(), 1);
        assert!(f.promote(&c, 1));
        assert_eq!(f.delta(1).len(), 0);
        assert_eq!(f.delta(2).len(), 1);
        assert!(!f.promote(&c, 1), "no longer present at level 1");
        assert!(f.is_fixpoint_at(1));
    }

    #[test]
    fn parents_are_subset_lemmas_at_exactly_that_level() {
        let mut f = Frames::new();
        f.push_frame();
        let parent = cube(&[(0, true)]);
        let unrelated = cube(&[(5, false)]);
        let bigger = cube(&[(0, true), (1, true), (2, false)]);
        f.add(parent.clone(), 1);
        f.add(unrelated, 1);
        f.add(cube(&[(0, true), (1, true)]), 2); // at level 2, not 1
        let parents = f.parents_of(&bigger, 1);
        assert_eq!(parents, vec![parent]);
        assert!(f.parents_of(&bigger, 0).is_empty());
        assert!(f.parents_of(&bigger, 99).is_empty());
    }

    #[test]
    #[should_panic(expected = "lemma level out of range")]
    fn add_rejects_level_zero() {
        let mut f = Frames::new();
        f.add(cube(&[(0, true)]), 0);
    }
}
