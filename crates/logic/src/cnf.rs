//! CNF formulas: conjunctions of clauses.

use crate::{Assignment, Clause, Lit, Var};
use std::fmt;

/// A formula in conjunctive normal form: a conjunction of [`Clause`]s.
///
/// Used for the initial-state constraint, the Tseitin-encoded transition
/// relation, and frame contents when they need to be handled as plain formulas
/// (e.g. by the certificate checker).
///
/// # Example
///
/// ```
/// use plic3_logic::{Clause, Cnf, Lit, Var};
/// let x = Var::new(0);
/// let mut cnf = Cnf::new();
/// cnf.push(Clause::unit(Lit::pos(x)));
/// assert_eq!(cnf.len(), 1);
/// assert_eq!(cnf.max_var(), Some(x));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Cnf {
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty CNF (the constant `⊤`).
    pub const fn new() -> Self {
        Cnf {
            clauses: Vec::new(),
        }
    }

    /// Creates a CNF from an iterator of clauses.
    pub fn from_clauses<I: IntoIterator<Item = Clause>>(clauses: I) -> Self {
        Cnf {
            clauses: clauses.into_iter().collect(),
        }
    }

    /// Appends a clause.
    pub fn push(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// Appends a unit clause asserting `lit`.
    pub fn push_unit(&mut self, lit: Lit) {
        self.clauses.push(Clause::unit(lit));
    }

    /// Returns the clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Returns the number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses (the constant `⊤`).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Returns `true` if the formula contains an empty clause and is therefore
    /// trivially unsatisfiable.
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// The largest variable index mentioned in the formula, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.clauses.iter().filter_map(Clause::max_var).max()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// Evaluates the formula under a (possibly partial) assignment.
    ///
    /// Returns `Some(false)` as soon as one clause is falsified, `Some(true)` if
    /// every clause is satisfied, and `None` otherwise.
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        let mut all_true = true;
        for clause in &self.clauses {
            match assignment.eval_clause(clause) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Consumes the formula and returns its clause vector.
    pub fn into_clauses(self) -> Vec<Clause> {
        self.clauses
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        Cnf::from_clauses(iter)
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        self.clauses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl IntoIterator for Cnf {
    type Item = Clause;
    type IntoIter = std::vec::IntoIter<Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.into_iter()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn push_and_inspect() {
        let mut cnf = Cnf::new();
        assert!(cnf.is_empty());
        cnf.push(Clause::from_lits([lit(0, true), lit(2, false)]));
        cnf.push_unit(lit(1, true));
        assert_eq!(cnf.len(), 2);
        assert_eq!(cnf.num_lits(), 3);
        assert_eq!(cnf.max_var(), Some(Var::new(2)));
        assert!(!cnf.has_empty_clause());
    }

    #[test]
    fn empty_clause_detection() {
        let cnf = Cnf::from_clauses([Clause::empty()]);
        assert!(cnf.has_empty_clause());
    }

    #[test]
    fn eval_partial_and_total() {
        // (x0 ∨ ¬x1) ∧ (x1)
        let cnf = Cnf::from_clauses([
            Clause::from_lits([lit(0, true), lit(1, false)]),
            Clause::unit(lit(1, true)),
        ]);
        let mut a = Assignment::new(2);
        assert_eq!(cnf.eval(&a), None);
        a.assign(Var::new(1), true);
        assert_eq!(cnf.eval(&a), None); // first clause still unknown
        a.assign(Var::new(0), false);
        assert_eq!(cnf.eval(&a), Some(false));
        a.assign(Var::new(0), true);
        assert_eq!(cnf.eval(&a), Some(true));
    }

    #[test]
    fn eval_of_empty_cnf_is_true() {
        let cnf = Cnf::new();
        let a = Assignment::new(0);
        assert_eq!(cnf.eval(&a), Some(true));
    }

    #[test]
    fn collect_and_iterate() {
        let clauses = vec![Clause::unit(lit(0, true)), Clause::unit(lit(1, false))];
        let cnf: Cnf = clauses.clone().into_iter().collect();
        let back: Vec<Clause> = cnf.iter().cloned().collect();
        assert_eq!(back, clauses);
        assert_eq!(cnf.clone().into_clauses(), clauses);
    }

    #[test]
    fn extend_appends() {
        let mut cnf = Cnf::new();
        cnf.extend([Clause::unit(lit(0, true))]);
        cnf.extend([Clause::unit(lit(1, true))]);
        assert_eq!(cnf.len(), 2);
    }

    #[test]
    fn display_formats_clauses() {
        let cnf = Cnf::from_clauses([
            Clause::from_lits([lit(0, true), lit(1, false)]),
            Clause::unit(lit(2, true)),
        ]);
        assert_eq!(cnf.to_string(), "(x0 ∨ ¬x1) ∧ (x2)");
        assert_eq!(Cnf::new().to_string(), "⊤");
    }

    #[test]
    fn cube_negation_into_cnf_units() {
        // Blocking a cube adds the negated cube as one clause; sanity check the
        // interplay of the types.
        let cube = Cube::from_lits([lit(0, true), lit(1, false)]);
        let mut cnf = Cnf::new();
        cnf.push(cube.negate());
        assert_eq!(cnf.clauses()[0].lits(), &[lit(0, false), lit(1, true)]);
    }
}
