//! Partial truth assignments.

use crate::{Clause, Cube, Lit, Var};
use std::fmt;

/// A (possibly partial) truth assignment over a dense range of variables.
///
/// Assignments are produced by the SAT solver as models, by the AIG simulator
/// when replaying counterexample traces, and by the benchmark generators when
/// describing initial states.
///
/// # Example
///
/// ```
/// use plic3_logic::{Assignment, Cube, Lit, Var};
/// let mut a = Assignment::new(3);
/// a.assign(Var::new(0), true);
/// a.assign(Var::new(2), false);
/// assert_eq!(a.value(Var::new(1)), None);
/// let cube = a.to_cube([Var::new(0), Var::new(2)]);
/// assert_eq!(cube, Cube::from_lits([Lit::pos(Var::new(0)), Lit::neg(Var::new(2))]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// Creates an all-unassigned assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![None; num_vars],
        }
    }

    /// Creates an assignment from explicit per-variable values.
    pub fn from_values(values: Vec<Option<bool>>) -> Self {
        Assignment { values }
    }

    /// Number of variable slots (assigned or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the assignment has no variable slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Assigns `value` to `var`, growing the assignment if necessary.
    pub fn assign(&mut self, var: Var, value: bool) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, None);
        }
        self.values[var.index()] = Some(value);
    }

    /// Asserts the literal `lit` (assigns its variable so the literal is true).
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.asserted_value());
    }

    /// Removes the value of `var`.
    pub fn unassign(&mut self, var: Var) {
        if var.index() < self.values.len() {
            self.values[var.index()] = None;
        }
    }

    /// The value of `var`, if assigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values.get(var.index()).copied().flatten()
    }

    /// The truth value of `lit` under this assignment, if its variable is assigned.
    pub fn eval_lit(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var())
            .map(|v| if lit.is_pos() { v } else { !v })
    }

    /// Evaluates a cube: `Some(false)` if any literal is false, `Some(true)` if
    /// all are true, `None` otherwise.
    pub fn eval_cube(&self, cube: &Cube) -> Option<bool> {
        let mut all_true = true;
        for lit in cube {
            match self.eval_lit(lit) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Evaluates a clause: `Some(true)` if any literal is true, `Some(false)` if
    /// all are false, `None` otherwise.
    pub fn eval_clause(&self, clause: &Clause) -> Option<bool> {
        let mut all_false = true;
        for lit in clause {
            match self.eval_lit(lit) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_false = false,
            }
        }
        if all_false {
            Some(false)
        } else {
            None
        }
    }

    /// Returns `true` if the cube is satisfied (all literals true). Unassigned
    /// variables count as *not* satisfied.
    pub fn satisfies_cube(&self, cube: &Cube) -> bool {
        self.eval_cube(cube) == Some(true)
    }

    /// Projects the assignment onto `vars`, producing a cube that asserts the
    /// current value of each assigned variable in `vars` (unassigned variables
    /// are skipped).
    pub fn to_cube<I: IntoIterator<Item = Var>>(&self, vars: I) -> Cube {
        Cube::from_lits(
            vars.into_iter()
                .filter_map(|v| self.value(v).map(|val| Lit::new(v, val))),
        )
    }

    /// Iterates over `(Var, bool)` pairs for all assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| (Var::new(i as u32), val)))
    }

    /// Number of assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }
}

impl FromIterator<Lit> for Assignment {
    /// Builds an assignment asserting every literal of the iterator.
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        let mut a = Assignment::new(0);
        for lit in iter {
            a.assign_lit(lit);
        }
        a
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (var, val) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{var}={}", u8::from(val))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn assign_and_read_back() {
        let mut a = Assignment::new(2);
        assert_eq!(a.len(), 2);
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false);
        assert_eq!(a.value(Var::new(0)), Some(true));
        assert_eq!(a.value(Var::new(1)), Some(false));
        assert_eq!(a.num_assigned(), 2);
        a.unassign(Var::new(0));
        assert_eq!(a.value(Var::new(0)), None);
        assert_eq!(a.num_assigned(), 1);
    }

    #[test]
    fn assign_grows_automatically() {
        let mut a = Assignment::new(0);
        a.assign(Var::new(10), true);
        assert_eq!(a.len(), 11);
        assert_eq!(a.value(Var::new(10)), Some(true));
        assert_eq!(a.value(Var::new(3)), None);
        // Reading past the end is also fine.
        assert_eq!(a.value(Var::new(100)), None);
    }

    #[test]
    fn eval_lit_respects_polarity() {
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), false);
        assert_eq!(a.eval_lit(lit(0, true)), Some(false));
        assert_eq!(a.eval_lit(lit(0, false)), Some(true));
        assert_eq!(a.eval_lit(lit(1, true)), None);
    }

    #[test]
    fn eval_cube_and_clause() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false);
        let cube = Cube::from_lits([lit(0, true), lit(1, false)]);
        assert_eq!(a.eval_cube(&cube), Some(true));
        assert!(a.satisfies_cube(&cube));
        let cube2 = Cube::from_lits([lit(0, true), lit(2, true)]);
        assert_eq!(a.eval_cube(&cube2), None);
        assert!(!a.satisfies_cube(&cube2));
        let clause = Clause::from_lits([lit(0, false), lit(1, true)]);
        assert_eq!(a.eval_clause(&clause), Some(false));
        let clause2 = Clause::from_lits([lit(0, false), lit(2, true)]);
        assert_eq!(a.eval_clause(&clause2), None);
        let clause3 = Clause::from_lits([lit(1, false), lit(2, true)]);
        assert_eq!(a.eval_clause(&clause3), Some(true));
    }

    #[test]
    fn empty_cube_is_true_empty_clause_is_false() {
        let a = Assignment::new(0);
        assert_eq!(a.eval_cube(&Cube::top()), Some(true));
        assert_eq!(a.eval_clause(&Clause::empty()), Some(false));
    }

    #[test]
    fn projection_to_cube_skips_unassigned() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        a.assign(Var::new(2), false);
        let c = a.to_cube([Var::new(0), Var::new(1), Var::new(2)]);
        assert_eq!(c, Cube::from_lits([lit(0, true), lit(2, false)]));
    }

    #[test]
    fn from_literals_collects_assignment() {
        let a: Assignment = [lit(0, false), lit(3, true)].into_iter().collect();
        assert_eq!(a.value(Var::new(0)), Some(false));
        assert_eq!(a.value(Var::new(3)), Some(true));
        assert_eq!(a.num_assigned(), 2);
    }

    #[test]
    fn display_lists_assigned_vars() {
        let mut a = Assignment::new(2);
        a.assign(Var::new(1), true);
        assert_eq!(a.to_string(), "{x1=1}");
    }

    #[test]
    fn iter_yields_pairs_in_index_order() {
        let mut a = Assignment::new(4);
        a.assign(Var::new(3), false);
        a.assign(Var::new(1), true);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(Var::new(1), true), (Var::new(3), false)]);
    }
}
