//! A tiny deterministic PRNG for seeded test-case and benchmark generation.

use std::ops::Range;

/// A SplitMix64 pseudo-random generator.
///
/// The workspace is dependency-free, so this stands in for `rand` wherever
/// reproducible randomness is needed: the random benchmark circuits and the
/// seeded property/fuzz tests. The generator only has to be stable across
/// runs and platforms — statistical quality beyond that is irrelevant here.
///
/// # Example
///
/// ```
/// use plic3_logic::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A biased coin flip: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// A uniform value in `0..n` (returns 0 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the `rand` API this mirrors.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample from the empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform index in `range` (rand-style convenience for `usize` ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the `rand` API this mirrors.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        self.range(range.start as u64, range.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = SplitMix64::new(43);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let r = rng.range(5, 8);
            assert!((5..8).contains(&r));
            let i = rng.gen_range(2..4);
            assert!((2..4).contains(&i));
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SplitMix64::new(1).gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability_roughly() {
        let mut rng = SplitMix64::new(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
