//! Literals: a variable or its negation.

use crate::Var;
use std::fmt;
use std::ops::Not;

/// A literal, i.e. a [`Var`] with a polarity.
///
/// Internally encoded as `2 * var + sign` (the AIGER / MiniSat convention), so
/// that literals can be used directly as dense indices into watch lists.
///
/// # Example
///
/// ```
/// use plic3_logic::{Lit, Var};
/// let x = Var::new(3);
/// let l = Lit::pos(x);
/// assert_eq!(!l, Lit::neg(x));
/// assert_eq!((!l).var(), x);
/// assert!(l.is_pos());
/// assert!((!l).is_neg());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    pub const fn pos(var: Var) -> Self {
        Lit(var.raw() << 1)
    }

    /// Creates the negative literal of `var`.
    pub const fn neg(var: Var) -> Self {
        Lit((var.raw() << 1) | 1)
    }

    /// Creates a literal from a variable and a polarity (`true` = positive).
    pub const fn new(var: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// Creates a literal from its dense code (`2 * var + sign`).
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the dense code of this literal (`2 * var + sign`).
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the variable of this literal.
    pub const fn var(self) -> Var {
        Var::new(self.0 >> 1)
    }

    /// Returns `true` if this literal is the positive occurrence of its variable.
    pub const fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this literal is the negative occurrence of its variable.
    pub const fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the truth value this literal asserts for its variable
    /// (`true` for a positive literal, `false` for a negative one).
    pub const fn asserted_value(self) -> bool {
        self.is_pos()
    }

    /// Returns the literal of the same variable with the given polarity.
    pub const fn with_polarity(self, positive: bool) -> Self {
        Lit::new(self.var(), positive)
    }

    /// Converts to the DIMACS convention (`var + 1`, negative if the literal is
    /// negative). DIMACS variables are 1-based.
    pub const fn to_dimacs(self) -> i64 {
        let v = (self.0 >> 1) as i64 + 1;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (non-zero signed integer).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = Var::new((dimacs.unsigned_abs() - 1) as u32);
        Lit::new(var, dimacs > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_and_var() {
        let v = Var::new(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert!(p.is_pos() && !p.is_neg());
        assert!(n.is_neg() && !n.is_pos());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.asserted_value());
        assert!(!n.asserted_value());
    }

    #[test]
    fn negation_is_involutive() {
        let l = Lit::neg(Var::new(9));
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..50u32 {
            let l = Lit::from_code(code);
            assert_eq!(l.code(), code as usize);
        }
        assert_eq!(Lit::pos(Var::new(3)).code(), 6);
        assert_eq!(Lit::neg(Var::new(3)).code(), 7);
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [-17i64, -1, 1, 2, 42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn with_polarity_keeps_var() {
        let l = Lit::neg(Var::new(4));
        assert_eq!(l.with_polarity(true), Lit::pos(Var::new(4)));
        assert_eq!(l.with_polarity(false), l);
    }

    #[test]
    fn display_marks_negative() {
        assert_eq!(Lit::pos(Var::new(1)).to_string(), "x1");
        assert_eq!(Lit::neg(Var::new(1)).to_string(), "¬x1");
    }

    #[test]
    fn ordering_groups_by_variable() {
        // Positive literal sorts immediately before the negative literal of the
        // same variable, and both sort before any literal of a larger variable.
        let v1 = Var::new(1);
        let v2 = Var::new(2);
        assert!(Lit::pos(v1) < Lit::neg(v1));
        assert!(Lit::neg(v1) < Lit::pos(v2));
    }
}
