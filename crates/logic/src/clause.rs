//! Clauses: disjunctions of literals.

use crate::cube::is_sorted_subset;
use crate::{Cube, Lit, Var};
use std::fmt;

/// A clause — a disjunction of literals, stored as a sorted, duplicate-free vector.
///
/// Clauses are the *lemmas* of IC3: the negation of a blocked cube. The empty
/// clause is `⊥` (unsatisfiable); a clause containing a literal and its negation
/// is a tautology.
///
/// # Example
///
/// ```
/// use plic3_logic::{Clause, Cube, Lit, Var};
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let lemma = Clause::from_lits([Lit::neg(x), Lit::pos(y)]);
/// // The lemma ¬x ∨ y blocks the cube x ∧ ¬y.
/// assert_eq!(lemma.negate(), Cube::from_lits([Lit::pos(x), Lit::neg(y)]));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates the empty clause `⊥`.
    pub const fn empty() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from an iterator of literals, sorting and deduplicating.
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        Clause { lits }
    }

    /// Creates a unit clause.
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// Returns the literals of this clause in sorted order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if this is the empty clause `⊥`.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        self.lits
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
    }

    /// Returns `true` if `lit` occurs in the clause.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Returns `true` if some literal of the clause is over `var`.
    pub fn mentions(&self, var: Var) -> bool {
        self.contains(Lit::pos(var)) || self.contains(Lit::neg(var))
    }

    /// Set-inclusion test: `true` iff every literal of `self` occurs in `other`.
    ///
    /// For clauses, the subset is the logically *stronger* formula: if
    /// `self ⊆ other` then `self ⇒ other`. This is the "parent lemma" relation
    /// `p ⊆ c` used by Algorithm 2 of the paper.
    pub fn subsumes(&self, other: &Clause) -> bool {
        is_sorted_subset(&self.lits, &other.lits)
    }

    /// The negation of this clause, as a cube (De Morgan).
    pub fn negate(&self) -> Cube {
        Cube::from_lits(self.lits.iter().map(|&l| !l))
    }

    /// Returns a new clause with `lit` added (no-op if already present).
    pub fn with_lit(&self, lit: Lit) -> Clause {
        if self.contains(lit) {
            self.clone()
        } else {
            let mut lits = self.lits.clone();
            let pos = lits.binary_search(&lit).unwrap_err();
            lits.insert(pos, lit);
            Clause { lits }
        }
    }

    /// Returns a new clause with `lit` removed (no-op if absent).
    pub fn without_lit(&self, lit: Lit) -> Clause {
        Clause {
            lits: self.lits.iter().copied().filter(|&l| l != lit).collect(),
        }
    }

    /// Iterates over the literals of the clause.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Lit>> {
        self.lits.iter().copied()
    }

    /// Consumes the clause and returns its literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }

    /// The largest variable index mentioned in the clause, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.lits.iter().map(|l| l.var()).max()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = Lit;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Lit>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl From<Cube> for Clause {
    /// Reinterprets the literal set of a cube as a clause (no negation applied).
    fn from(cube: Cube) -> Self {
        Clause {
            lits: cube.into_lits(),
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = Clause::from_lits([lit(3, false), lit(1, true), lit(3, false)]);
        assert_eq!(c.lits(), &[lit(1, true), lit(3, false)]);
    }

    #[test]
    fn empty_clause_is_bottom() {
        let c = Clause::empty();
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "⊥");
        assert_eq!(c.max_var(), None);
    }

    #[test]
    fn unit_clause() {
        let c = Clause::unit(lit(7, false));
        assert_eq!(c.len(), 1);
        assert!(c.contains(lit(7, false)));
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_lits([lit(0, true), lit(0, false)]).is_tautology());
        assert!(!Clause::from_lits([lit(0, true), lit(1, false)]).is_tautology());
    }

    #[test]
    fn subsumption_matches_parent_lemma_relation() {
        // p ⊆ c  means the lemma p implies the clause c.
        let p = Clause::from_lits([lit(1, false)]);
        let c = Clause::from_lits([lit(1, false), lit(2, true)]);
        assert!(p.subsumes(&c));
        assert!(!c.subsumes(&p));
    }

    #[test]
    fn negate_roundtrip_with_cube() {
        let cl = Clause::from_lits([lit(0, true), lit(4, false)]);
        let cube = cl.negate();
        assert_eq!(cube.lits(), &[lit(0, false), lit(4, true)]);
        assert_eq!(cube.negate(), cl);
    }

    #[test]
    fn with_and_without_lit() {
        let c = Clause::unit(lit(1, true));
        let c2 = c.with_lit(lit(2, false));
        assert!(c2.contains(lit(2, false)));
        assert_eq!(c2.without_lit(lit(2, false)), c);
        assert_eq!(c.with_lit(lit(1, true)), c);
    }

    #[test]
    fn mentions_checks_both_polarities() {
        let c = Clause::from_lits([lit(2, false)]);
        assert!(c.mentions(Var::new(2)));
        assert!(!c.mentions(Var::new(1)));
    }

    #[test]
    fn conversion_between_cube_and_clause_preserves_lits() {
        let c = Clause::from_lits([lit(0, true), lit(1, false)]);
        let as_cube: Cube = c.clone().into();
        assert_eq!(as_cube.lits(), c.lits());
        let back: Clause = as_cube.into();
        assert_eq!(back, c);
    }

    #[test]
    fn display_joins_with_or() {
        let c = Clause::from_lits([lit(0, true), lit(1, false)]);
        assert_eq!(c.to_string(), "x0 ∨ ¬x1");
    }
}
