//! Boolean variables and fresh-variable allocation.

use std::fmt;

/// A Boolean variable, represented as a dense index.
///
/// Variables are cheap `Copy` handles; the structures that give them meaning
/// (transition systems, SAT solvers) index their internal arrays with
/// [`Var::index`].
///
/// # Example
///
/// ```
/// use plic3_logic::Var;
/// let v = Var::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.to_string(), "x7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given dense index.
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for Var {
    fn from(index: u32) -> Self {
        Var::new(index)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A monotone source of fresh [`Var`]s.
///
/// Used by the Tseitin encoder and by the IC3 engine when it needs activation
/// literals. Allocation never reuses an index.
///
/// # Example
///
/// ```
/// use plic3_logic::VarAllocator;
/// let mut alloc = VarAllocator::new();
/// let a = alloc.fresh();
/// let b = alloc.fresh();
/// assert_ne!(a, b);
/// assert_eq!(alloc.num_vars(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarAllocator {
    next: u32,
}

impl VarAllocator {
    /// Creates an allocator whose first fresh variable has index `0`.
    pub const fn new() -> Self {
        VarAllocator { next: 0 }
    }

    /// Creates an allocator whose first fresh variable has index `first`.
    ///
    /// Useful when a block of low indices is reserved (e.g. for state variables).
    pub const fn starting_at(first: u32) -> Self {
        VarAllocator { next: first }
    }

    /// Returns a variable that has never been returned before.
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(self.next);
        self.next += 1;
        v
    }

    /// Returns the number of variables allocated so far (i.e. the next free index).
    pub const fn num_vars(&self) -> usize {
        self.next as usize
    }

    /// Marks `var` (and every smaller index) as used, so that future calls to
    /// [`VarAllocator::fresh`] return strictly larger indices.
    pub fn reserve_through(&mut self, var: Var) {
        self.next = self.next.max(var.raw() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let v = Var::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(Var::from(42u32), v);
    }

    #[test]
    fn var_ordering_follows_index() {
        assert!(Var::new(1) < Var::new(2));
        assert!(Var::new(2) > Var::new(1));
        assert_eq!(Var::new(3), Var::new(3));
    }

    #[test]
    fn allocator_is_monotone() {
        let mut a = VarAllocator::new();
        let mut last = None;
        for _ in 0..100 {
            let v = a.fresh();
            if let Some(prev) = last {
                assert!(v > prev);
            }
            last = Some(v);
        }
        assert_eq!(a.num_vars(), 100);
    }

    #[test]
    fn allocator_starting_at_skips_reserved_block() {
        let mut a = VarAllocator::starting_at(10);
        assert_eq!(a.fresh(), Var::new(10));
        assert_eq!(a.fresh(), Var::new(11));
    }

    #[test]
    fn reserve_through_bumps_next() {
        let mut a = VarAllocator::new();
        a.reserve_through(Var::new(5));
        assert_eq!(a.fresh(), Var::new(6));
        // Reserving a smaller variable must not move the cursor backwards.
        a.reserve_through(Var::new(2));
        assert_eq!(a.fresh(), Var::new(7));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(Var::new(0).to_string(), "x0");
    }
}
