//! Propositional-logic primitives for the PLIC3 model checker.
//!
//! This crate provides the small, allocation-friendly building blocks that every
//! other layer of the reproduction of *Predicting Lemmas in Generalization of IC3*
//! (DAC 2024) is written in terms of:
//!
//! * [`Var`] — a Boolean variable, a dense index.
//! * [`Lit`] — a literal, i.e. a variable or its negation.
//! * [`Cube`] — a conjunction of literals (used for states and proof obligations).
//! * [`Clause`] — a disjunction of literals (used for lemmas and CNF clauses).
//! * [`Cnf`] — a conjunction of clauses.
//! * [`Assignment`] — a (partial) truth assignment used for models and simulation.
//! * [`VarAllocator`] — a monotone source of fresh variables.
//!
//! The *diff set* of Definition 3.1 in the paper is provided by [`Cube::diff`], and
//! Theorems 3.2–3.4 are exercised by the unit and property tests of this crate.
//!
//! # Example
//!
//! ```
//! use plic3_logic::{Cube, Lit, Var};
//!
//! let x = Var::new(0);
//! let y = Var::new(1);
//! let b = Cube::from_lits([Lit::pos(x), Lit::pos(y)]);
//! let t = Cube::from_lits([Lit::neg(x), Lit::pos(y)]);
//! // diff(b, t) = { x } because x ∈ b and ¬x ∈ t.
//! assert_eq!(b.diff(&t).lits(), &[Lit::pos(x)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
mod cnf;
mod cube;
mod lit;
mod rng;
mod var;

pub use assignment::Assignment;
pub use clause::Clause;
pub use cnf::Cnf;
pub use cube::Cube;
pub use lit::Lit;
pub use rng::SplitMix64;
pub use var::{Var, VarAllocator};

/// A convenience alias for the result of evaluating a formula under a partial
/// assignment: `Some(true)` / `Some(false)` when determined, `None` when unknown.
pub type Ternary = Option<bool>;
