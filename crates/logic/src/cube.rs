//! Cubes: conjunctions of literals.

use crate::{Clause, Lit, Var};
use std::fmt;

/// A cube — a conjunction of literals, stored as a sorted, duplicate-free vector.
///
/// Cubes represent (sets of) states in IC3: a proof obligation, a predecessor
/// extracted from a SAT model, or the negation of a lemma. Because the literal
/// vector is kept sorted, subset tests ([`Cube::subsumes`]) and the paper's
/// diff-set computation ([`Cube::diff`]) are linear merges.
///
/// A cube containing both a literal and its negation is contradictory
/// ([`Cube::is_contradictory`] — the `⊥` of the paper); the empty cube is the
/// trivially true cube `⊤`.
///
/// # Example
///
/// ```
/// use plic3_logic::{Cube, Lit, Var};
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let c = Cube::from_lits([Lit::pos(y), Lit::neg(x)]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(Lit::neg(x)));
/// assert!(!c.contains(Lit::pos(x)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// Creates the empty cube `⊤` (true under every assignment).
    pub const fn top() -> Self {
        Cube { lits: Vec::new() }
    }

    /// Creates a cube from an iterator of literals, sorting and deduplicating.
    ///
    /// Contradictory inputs (containing `l` and `¬l`) are kept as-is and can be
    /// detected with [`Cube::is_contradictory`].
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        Cube { lits }
    }

    /// Returns the literals of this cube in sorted order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if this is the empty cube `⊤`.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the cube contains a literal and its negation, i.e. it is
    /// the unsatisfiable cube `⊥`.
    pub fn is_contradictory(&self) -> bool {
        self.lits
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
    }

    /// Returns `true` if `lit` occurs in the cube.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Returns `true` if some literal of the cube is over `var` (either polarity).
    pub fn mentions(&self, var: Var) -> bool {
        self.contains(Lit::pos(var)) || self.contains(Lit::neg(var))
    }

    /// Returns the polarity the cube asserts for `var`, if any.
    pub fn value_of(&self, var: Var) -> Option<bool> {
        if self.contains(Lit::pos(var)) {
            Some(true)
        } else if self.contains(Lit::neg(var)) {
            Some(false)
        } else {
            None
        }
    }

    /// Set-inclusion test: `true` iff every literal of `self` occurs in `other`.
    ///
    /// By Theorem 3.4 of the paper, for non-contradictory cubes this is exactly
    /// the semantic entailment `other ⇒ self` (the *smaller* literal set is the
    /// *weaker*, larger set of states).
    pub fn subsumes(&self, other: &Cube) -> bool {
        is_sorted_subset(&self.lits, &other.lits)
    }

    /// The diff set of Definition 3.1: the literals `l ∈ self` with `¬l ∈ other`.
    ///
    /// By Theorem 3.2, the diff set is non-empty iff `self ∧ other` is
    /// unsatisfiable (for non-contradictory cubes).
    ///
    /// # Example
    ///
    /// ```
    /// use plic3_logic::{Cube, Lit, Var};
    /// let x = Var::new(0);
    /// let y = Var::new(1);
    /// let a = Cube::from_lits([Lit::pos(x), Lit::pos(y)]);
    /// let b = Cube::from_lits([Lit::neg(x), Lit::pos(y)]);
    /// assert_eq!(a.diff(&b), Cube::from_lits([Lit::pos(x)]));
    /// // diff is not symmetric:
    /// assert_eq!(b.diff(&a), Cube::from_lits([Lit::neg(x)]));
    /// ```
    pub fn diff(&self, other: &Cube) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|&l| other.contains(!l))
                .collect(),
        }
    }

    /// Intersection of the literal sets of two cubes.
    pub fn intersection(&self, other: &Cube) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|&l| other.contains(l))
                .collect(),
        }
    }

    /// Returns a new cube with `lit` added (no-op if already present).
    pub fn with_lit(&self, lit: Lit) -> Cube {
        if self.contains(lit) {
            self.clone()
        } else {
            let mut lits = self.lits.clone();
            let pos = lits.binary_search(&lit).unwrap_err();
            lits.insert(pos, lit);
            Cube { lits }
        }
    }

    /// Returns a new cube with `lit` removed (no-op if absent).
    pub fn without_lit(&self, lit: Lit) -> Cube {
        Cube {
            lits: self.lits.iter().copied().filter(|&l| l != lit).collect(),
        }
    }

    /// Returns a new cube keeping only the literals at positions where `keep` is
    /// `true`. Used by generalization when several literals are dropped at once.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.len()`.
    pub fn retain_by_mask(&self, keep: &[bool]) -> Cube {
        assert_eq!(keep.len(), self.lits.len(), "mask length mismatch");
        Cube {
            lits: self
                .lits
                .iter()
                .zip(keep)
                .filter_map(|(&l, &k)| k.then_some(l))
                .collect(),
        }
    }

    /// The negation of this cube, as a clause (De Morgan).
    pub fn negate(&self) -> Clause {
        Clause::from_lits(self.lits.iter().map(|&l| !l))
    }

    /// Iterates over the literals of the cube.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Lit>> {
        self.lits.iter().copied()
    }

    /// Consumes the cube and returns its literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }

    /// The largest variable index mentioned in the cube, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.lits.iter().map(|l| l.var()).max()
    }
}

impl FromIterator<Lit> for Cube {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Cube::from_lits(iter)
    }
}

impl Extend<Lit> for Cube {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
        self.lits.sort_unstable();
        self.lits.dedup();
    }
}

impl<'a> IntoIterator for &'a Cube {
    type Item = Lit;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Lit>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Cube {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl From<Clause> for Cube {
    /// Reinterprets the literal set of a clause as a cube (no negation applied).
    fn from(clause: Clause) -> Self {
        Cube {
            lits: clause.into_lits(),
        }
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// Returns `true` iff sorted slice `a` is a subset of sorted slice `b`.
pub(crate) fn is_sorted_subset(a: &[Lit], b: &[Lit]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    'outer: for &la in a {
        while bi < b.len() {
            match b[bi].cmp(&la) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = Cube::from_lits([lit(2, true), lit(0, false), lit(2, true)]);
        assert_eq!(c.lits(), &[lit(0, false), lit(2, true)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn top_is_empty_and_not_contradictory() {
        let t = Cube::top();
        assert!(t.is_empty());
        assert!(!t.is_contradictory());
        assert_eq!(t.to_string(), "⊤");
    }

    #[test]
    fn contradiction_detection() {
        let c = Cube::from_lits([lit(1, true), lit(1, false)]);
        assert!(c.is_contradictory());
        let ok = Cube::from_lits([lit(1, true), lit(2, false)]);
        assert!(!ok.is_contradictory());
    }

    #[test]
    fn contains_and_value_of() {
        let c = Cube::from_lits([lit(1, true), lit(2, false)]);
        assert!(c.contains(lit(1, true)));
        assert!(!c.contains(lit(1, false)));
        assert_eq!(c.value_of(Var::new(1)), Some(true));
        assert_eq!(c.value_of(Var::new(2)), Some(false));
        assert_eq!(c.value_of(Var::new(3)), None);
        assert!(c.mentions(Var::new(2)));
        assert!(!c.mentions(Var::new(3)));
    }

    #[test]
    fn subsumption_is_subset_inclusion() {
        let small = Cube::from_lits([lit(1, true)]);
        let big = Cube::from_lits([lit(1, true), lit(2, false), lit(3, true)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(Cube::top().subsumes(&big));
        assert!(big.subsumes(&big));
        // Same variable, different polarity is not inclusion.
        let other = Cube::from_lits([lit(1, false)]);
        assert!(!other.subsumes(&big));
    }

    #[test]
    fn diff_set_definition() {
        // Paper Definition 3.1: diff(a, b) = { l | l ∈ a ∧ ¬l ∈ b }.
        let a = Cube::from_lits([lit(0, true), lit(1, true), lit(2, false)]);
        let b = Cube::from_lits([lit(0, false), lit(1, true), lit(2, true)]);
        assert_eq!(a.diff(&b), Cube::from_lits([lit(0, true), lit(2, false)]));
        assert_eq!(b.diff(&a), Cube::from_lits([lit(0, false), lit(2, true)]));
        // Not symmetric in general; equal only by coincidence of polarities.
        assert_ne!(a.diff(&b), b.diff(&a));
    }

    #[test]
    fn diff_empty_iff_compatible_small_cases() {
        // Theorem 3.2 on a couple of concrete cases.
        let a = Cube::from_lits([lit(0, true), lit(1, false)]);
        let compatible = Cube::from_lits([lit(1, false), lit(2, true)]);
        assert!(a.diff(&compatible).is_empty());
        let incompatible = Cube::from_lits([lit(1, true)]);
        assert!(!a.diff(&incompatible).is_empty());
    }

    #[test]
    fn with_and_without_lit() {
        let c = Cube::from_lits([lit(1, true)]);
        let c2 = c.with_lit(lit(0, false));
        assert_eq!(c2.lits(), &[lit(0, false), lit(1, true)]);
        assert_eq!(c2.with_lit(lit(1, true)), c2);
        assert_eq!(c2.without_lit(lit(0, false)), c);
        assert_eq!(c.without_lit(lit(5, true)), c);
    }

    #[test]
    fn retain_by_mask_keeps_selected() {
        let c = Cube::from_lits([lit(0, true), lit(1, true), lit(2, true)]);
        let r = c.retain_by_mask(&[true, false, true]);
        assert_eq!(r.lits(), &[lit(0, true), lit(2, true)]);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn retain_by_mask_wrong_len_panics() {
        let c = Cube::from_lits([lit(0, true)]);
        let _ = c.retain_by_mask(&[true, false]);
    }

    #[test]
    fn negate_gives_clause_of_negated_lits() {
        let c = Cube::from_lits([lit(0, true), lit(1, false)]);
        let cl = c.negate();
        assert_eq!(cl.lits(), &[lit(0, false), lit(1, true)]);
        // Double negation gives back the cube.
        assert_eq!(cl.negate(), c);
    }

    #[test]
    fn intersection_of_literal_sets() {
        let a = Cube::from_lits([lit(0, true), lit(1, true), lit(2, false)]);
        let b = Cube::from_lits([lit(1, true), lit(2, true)]);
        assert_eq!(a.intersection(&b), Cube::from_lits([lit(1, true)]));
    }

    #[test]
    fn iteration_and_collect() {
        let c: Cube = [lit(3, true), lit(1, false)].into_iter().collect();
        let back: Vec<Lit> = c.iter().collect();
        assert_eq!(back, vec![lit(1, false), lit(3, true)]);
        assert_eq!(c.max_var(), Some(Var::new(3)));
        assert_eq!(Cube::top().max_var(), None);
    }

    #[test]
    fn extend_keeps_sorted_invariant() {
        let mut c = Cube::from_lits([lit(5, true)]);
        c.extend([lit(1, false), lit(5, true)]);
        assert_eq!(c.lits(), &[lit(1, false), lit(5, true)]);
    }

    #[test]
    fn display_joins_with_and() {
        let c = Cube::from_lits([lit(0, true), lit(1, false)]);
        assert_eq!(c.to_string(), "x0 ∧ ¬x1");
    }
}
