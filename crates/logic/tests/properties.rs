//! Property-based tests for the logic primitives.
//!
//! These encode Definition 3.1 and Theorems 3.2–3.4 of *Predicting Lemmas in
//! Generalization of IC3* (DAC 2024) as executable properties, plus general
//! sanity invariants of the cube/clause/assignment types. The properties are
//! exercised over a deterministic seeded sample (the workspace is
//! dependency-free, so no proptest) — every case is reproducible from its
//! seed, which failure messages report.

use plic3_logic::{Assignment, Clause, Cnf, Cube, Lit, SplitMix64 as Rng, Var};
use std::collections::BTreeMap;

const MAX_VAR: u32 = 8;
const CASES: u64 = 300;

fn arb_lit(rng: &mut Rng) -> Lit {
    Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool())
}

/// An arbitrary (possibly contradictory) cube of up to 9 literals.
fn arb_cube(rng: &mut Rng) -> Cube {
    let len = rng.below(10) as usize;
    Cube::from_lits((0..len).map(|_| arb_lit(rng)))
}

/// A consistent cube (at most one polarity per variable), possibly empty.
fn arb_consistent_cube(rng: &mut Rng, min_len: usize) -> Cube {
    let len = min_len + rng.below(8 - min_len as u64) as usize;
    let mut polarities: BTreeMap<u32, bool> = BTreeMap::new();
    while polarities.len() < len {
        polarities.insert(rng.below(MAX_VAR as u64) as u32, rng.bool());
    }
    Cube::from_lits(
        polarities
            .into_iter()
            .map(|(v, pos)| Lit::new(Var::new(v), pos)),
    )
}

/// A total assignment over the variable range.
fn arb_total_assignment(rng: &mut Rng) -> Assignment {
    Assignment::from_values((0..MAX_VAR).map(|_| Some(rng.bool())).collect())
}

/// Enumerate all total assignments over `MAX_VAR` variables (2^8 = 256 of them).
fn all_assignments() -> impl Iterator<Item = Assignment> {
    (0u32..(1 << MAX_VAR)).map(|bits| {
        Assignment::from_values(
            (0..MAX_VAR)
                .map(|i| Some(bits >> i & 1 == 1))
                .collect::<Vec<_>>(),
        )
    })
}

// ------------------------------------------------------------------
// Literal and negation basics
// ------------------------------------------------------------------

#[test]
fn lit_double_negation() {
    let mut rng = Rng::new(1);
    for seed in 0..CASES {
        let l = arb_lit(&mut rng);
        assert_eq!(!!l, l, "seed {seed}");
        assert_ne!(!l, l, "seed {seed}");
        assert_eq!((!l).var(), l.var(), "seed {seed}");
    }
}

#[test]
fn dimacs_roundtrip() {
    let mut rng = Rng::new(2);
    for seed in 0..CASES {
        let l = arb_lit(&mut rng);
        assert_eq!(Lit::from_dimacs(l.to_dimacs()), l, "seed {seed}");
    }
}

// ------------------------------------------------------------------
// Cube invariants
// ------------------------------------------------------------------

#[test]
fn cube_lits_sorted_and_unique() {
    let mut rng = Rng::new(3);
    for seed in 0..CASES {
        let c = arb_cube(&mut rng);
        for w in c.lits().windows(2) {
            assert!(w[0] < w[1], "seed {seed}: {c}");
        }
    }
}

#[test]
fn cube_negate_involutive() {
    let mut rng = Rng::new(4);
    for seed in 0..CASES {
        let c = arb_cube(&mut rng);
        assert_eq!(c.negate().negate(), c, "seed {seed}");
    }
}

#[test]
fn cube_with_then_without() {
    let mut rng = Rng::new(5);
    for seed in 0..CASES {
        let c = arb_cube(&mut rng);
        let l = arb_lit(&mut rng);
        let added = c.with_lit(l);
        assert!(added.contains(l), "seed {seed}");
        if !c.contains(l) {
            assert_eq!(added.without_lit(l), c, "seed {seed}");
        }
    }
}

#[test]
fn cube_subsumes_is_reflexive_and_monotone() {
    let mut rng = Rng::new(6);
    for seed in 0..CASES {
        let c = arb_cube(&mut rng);
        let l = arb_lit(&mut rng);
        assert!(c.subsumes(&c), "seed {seed}");
        assert!(c.subsumes(&c.with_lit(l)), "seed {seed}");
        assert!(Cube::top().subsumes(&c), "seed {seed}");
    }
}

// ------------------------------------------------------------------
// Theorem 3.4: for consistent non-empty cubes a, b:  a ⇒ b  iff  b ⊆ a.
// ------------------------------------------------------------------

#[test]
fn theorem_3_4_subset_iff_entailment() {
    let mut rng = Rng::new(7);
    for seed in 0..CASES {
        let a = arb_consistent_cube(&mut rng, 1);
        let b = arb_consistent_cube(&mut rng, 1);
        let subset = b.subsumes(&a); // b ⊆ a as literal sets
                                     // Semantic entailment a ⇒ b checked by enumerating all assignments.
        let entails = all_assignments()
            .filter(|asg| asg.satisfies_cube(&a))
            .all(|asg| asg.satisfies_cube(&b));
        assert_eq!(subset, entails, "seed {seed}: a={a} b={b}");
    }
}

// ------------------------------------------------------------------
// Definition 3.1 / Theorem 3.2: diff(a,b) ≠ ∅ iff a ∧ b unsatisfiable.
// ------------------------------------------------------------------

#[test]
fn theorem_3_2_diff_nonempty_iff_conjunction_unsat() {
    let mut rng = Rng::new(8);
    for seed in 0..CASES {
        let a = arb_consistent_cube(&mut rng, 1);
        let b = arb_consistent_cube(&mut rng, 1);
        let diff_nonempty = !a.diff(&b).is_empty();
        let conjunction_unsat =
            !all_assignments().any(|asg| asg.satisfies_cube(&a) && asg.satisfies_cube(&b));
        assert_eq!(diff_nonempty, conjunction_unsat, "seed {seed}: a={a} b={b}");
    }
}

#[test]
fn diff_is_subset_of_lhs() {
    let mut rng = Rng::new(9);
    for seed in 0..CASES {
        let a = arb_cube(&mut rng);
        let b = arb_cube(&mut rng);
        let d = a.diff(&b);
        assert!(d.subsumes(&a), "seed {seed}");
        for l in &d {
            assert!(a.contains(l), "seed {seed}");
            assert!(b.contains(!l), "seed {seed}");
        }
    }
}

// ------------------------------------------------------------------
// Theorem 3.3: if diff(a,b) ≠ ∅ and c ∩ diff(a,b) ≠ ∅ then diff(c,b) ≠ ∅.
// ------------------------------------------------------------------

#[test]
fn theorem_3_3_diff_propagates_through_intersection() {
    let mut rng = Rng::new(10);
    for seed in 0..CASES {
        let a = arb_cube(&mut rng);
        let b = arb_cube(&mut rng);
        let c = arb_cube(&mut rng);
        let dab = a.diff(&b);
        if !dab.is_empty() && !c.intersection(&dab).is_empty() {
            assert!(!c.diff(&b).is_empty(), "seed {seed}: a={a} b={b} c={c}");
        }
    }
}

// ------------------------------------------------------------------
// The paper's candidate construction (Equation 6): c3 = c2 ∪ {l}, l ∈ diff(b, t)
// satisfies  c3 ∧ t = ⊥  (Eq. 2),  c3 ⊆ b when c2 ⊆ b (Eq. 3),  c2 ⊆ c3 (Eq. 4).
// ------------------------------------------------------------------

#[test]
fn equation_6_candidate_properties() {
    let mut rng = Rng::new(11);
    let mut exercised = 0u32;
    for seed in 0..CASES {
        let b = arb_consistent_cube(&mut rng, 1);
        let t = arb_consistent_cube(&mut rng, 1);
        let keep: Vec<bool> = (0..10).map(|_| rng.bool()).collect();
        let ds = b.diff(&t);
        if ds.is_empty() {
            continue;
        }
        exercised += 1;
        // Build a parent cube c2 ⊆ b by dropping some literals of b.
        let mask: Vec<bool> = b
            .lits()
            .iter()
            .enumerate()
            .map(|(i, _)| keep.get(i).copied().unwrap_or(true))
            .collect();
        let c2 = b.retain_by_mask(&mask);
        for l in &ds {
            let c3 = c2.with_lit(l);
            // Eq. 4: c2 ⊆ c3.
            assert!(c2.subsumes(&c3), "seed {seed}");
            // Eq. 3: c3 ⊆ b (so b ⇒ c3).
            assert!(c3.subsumes(&b), "seed {seed}");
            // Eq. 2: c3 ∧ t = ⊥, via Theorem 3.2 (diff non-empty).
            assert!(!c3.diff(&t).is_empty(), "seed {seed}");
            // And semantically: no assignment satisfies both c3 and t.
            let compatible =
                all_assignments().any(|asg| asg.satisfies_cube(&c3) && asg.satisfies_cube(&t));
            assert!(!compatible, "seed {seed}: c3={c3} t={t}");
        }
    }
    assert!(exercised > 20, "too few cases had a non-empty diff set");
}

// ------------------------------------------------------------------
// Clause / CNF / assignment interplay
// ------------------------------------------------------------------

#[test]
fn clause_negation_flips_evaluation() {
    let mut rng = Rng::new(12);
    for seed in 0..CASES {
        let c = arb_consistent_cube(&mut rng, 0);
        let asg = arb_total_assignment(&mut rng);
        let clause = c.negate();
        // Under a total assignment the cube and its negated clause always have
        // opposite truth values.
        if let (Some(cube_val), Some(clause_val)) = (asg.eval_cube(&c), asg.eval_clause(&clause)) {
            assert_ne!(cube_val, clause_val, "seed {seed}");
        } else {
            // Total assignment over MAX_VAR vars: both must be determined.
            assert!(
                c.max_var()
                    .map(|v| v.index() >= MAX_VAR as usize)
                    .unwrap_or(false),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn cnf_eval_matches_clausewise_eval() {
    let mut rng = Rng::new(13);
    for seed in 0..CASES {
        let num_clauses = rng.below(6) as usize;
        let clauses: Vec<Clause> = (0..num_clauses)
            .map(|_| {
                let len = 1 + rng.below(3) as usize;
                Clause::from_lits((0..len).map(|_| arb_lit(&mut rng)))
            })
            .collect();
        let asg = arb_total_assignment(&mut rng);
        let cnf = Cnf::from_clauses(clauses.clone());
        let expected = clauses
            .iter()
            .map(|c| asg.eval_clause(c))
            .try_fold(true, |acc, v| v.map(|v| acc && v));
        assert_eq!(cnf.eval(&asg), expected, "seed {seed}");
    }
}

#[test]
fn assignment_projection_satisfies_cube() {
    let mut rng = Rng::new(14);
    for seed in 0..CASES {
        let asg = arb_total_assignment(&mut rng);
        let vars: Vec<Var> = (0..MAX_VAR).map(Var::new).collect();
        let cube = asg.to_cube(vars);
        assert!(asg.satisfies_cube(&cube), "seed {seed}");
        assert!(!cube.is_contradictory(), "seed {seed}");
    }
}
