//! Property-based tests for the logic primitives.
//!
//! These encode Definition 3.1 and Theorems 3.2–3.4 of *Predicting Lemmas in
//! Generalization of IC3* (DAC 2024) as executable properties, plus general
//! sanity invariants of the cube/clause/assignment types.

use plic3_logic::{Assignment, Clause, Cnf, Cube, Lit, Var};
use proptest::prelude::*;

const MAX_VAR: u32 = 8;

/// Strategy for an arbitrary literal over a small variable range.
fn arb_lit() -> impl Strategy<Value = Lit> {
    (0..MAX_VAR, any::<bool>()).prop_map(|(v, pos)| Lit::new(Var::new(v), pos))
}

/// Strategy for an arbitrary (possibly contradictory) cube.
fn arb_cube() -> impl Strategy<Value = Cube> {
    prop::collection::vec(arb_lit(), 0..10).prop_map(Cube::from_lits)
}

/// Strategy for a consistent cube (at most one polarity per variable).
fn arb_consistent_cube() -> impl Strategy<Value = Cube> {
    prop::collection::btree_map(0..MAX_VAR, any::<bool>(), 0..8).prop_map(|m| {
        Cube::from_lits(m.into_iter().map(|(v, pos)| Lit::new(Var::new(v), pos)))
    })
}

/// Strategy for a non-empty consistent cube.
fn arb_nonempty_consistent_cube() -> impl Strategy<Value = Cube> {
    prop::collection::btree_map(0..MAX_VAR, any::<bool>(), 1..8).prop_map(|m| {
        Cube::from_lits(m.into_iter().map(|(v, pos)| Lit::new(Var::new(v), pos)))
    })
}

/// Strategy for a total assignment over the variable range.
fn arb_total_assignment() -> impl Strategy<Value = Assignment> {
    prop::collection::vec(any::<bool>(), MAX_VAR as usize)
        .prop_map(|vals| Assignment::from_values(vals.into_iter().map(Some).collect()))
}

/// Enumerate all total assignments over `MAX_VAR` variables (2^8 = 256 of them).
fn all_assignments() -> impl Iterator<Item = Assignment> {
    (0u32..(1 << MAX_VAR)).map(|bits| {
        Assignment::from_values(
            (0..MAX_VAR)
                .map(|i| Some(bits >> i & 1 == 1))
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    // ------------------------------------------------------------------
    // Literal and negation basics
    // ------------------------------------------------------------------

    #[test]
    fn lit_double_negation(l in arb_lit()) {
        prop_assert_eq!(!!l, l);
        prop_assert_ne!(!l, l);
        prop_assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn dimacs_roundtrip(l in arb_lit()) {
        prop_assert_eq!(Lit::from_dimacs(l.to_dimacs()), l);
    }

    // ------------------------------------------------------------------
    // Cube invariants
    // ------------------------------------------------------------------

    #[test]
    fn cube_lits_sorted_and_unique(c in arb_cube()) {
        let lits = c.lits();
        for w in lits.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn cube_negate_involutive(c in arb_cube()) {
        prop_assert_eq!(c.negate().negate(), c);
    }

    #[test]
    fn cube_with_then_without(c in arb_cube(), l in arb_lit()) {
        let added = c.with_lit(l);
        prop_assert!(added.contains(l));
        if !c.contains(l) {
            prop_assert_eq!(added.without_lit(l), c);
        }
    }

    #[test]
    fn cube_subsumes_is_reflexive_and_monotone(c in arb_cube(), l in arb_lit()) {
        prop_assert!(c.subsumes(&c));
        prop_assert!(c.subsumes(&c.with_lit(l)));
        prop_assert!(Cube::top().subsumes(&c));
    }

    // ------------------------------------------------------------------
    // Theorem 3.4: for consistent non-empty cubes a, b:  a ⇒ b  iff  b ⊆ a.
    // ------------------------------------------------------------------

    #[test]
    fn theorem_3_4_subset_iff_entailment(
        a in arb_nonempty_consistent_cube(),
        b in arb_nonempty_consistent_cube(),
    ) {
        let subset = b.subsumes(&a); // b ⊆ a as literal sets
        // Semantic entailment a ⇒ b checked by enumerating all assignments.
        let entails = all_assignments()
            .filter(|asg| asg.satisfies_cube(&a))
            .all(|asg| asg.satisfies_cube(&b));
        prop_assert_eq!(subset, entails);
    }

    // ------------------------------------------------------------------
    // Definition 3.1 / Theorem 3.2: diff(a,b) ≠ ∅ iff a ∧ b unsatisfiable.
    // ------------------------------------------------------------------

    #[test]
    fn theorem_3_2_diff_nonempty_iff_conjunction_unsat(
        a in arb_nonempty_consistent_cube(),
        b in arb_nonempty_consistent_cube(),
    ) {
        let diff_nonempty = !a.diff(&b).is_empty();
        let conjunction_unsat = !all_assignments()
            .any(|asg| asg.satisfies_cube(&a) && asg.satisfies_cube(&b));
        prop_assert_eq!(diff_nonempty, conjunction_unsat);
    }

    #[test]
    fn diff_is_subset_of_lhs(a in arb_cube(), b in arb_cube()) {
        let d = a.diff(&b);
        prop_assert!(d.subsumes(&a));
        for l in &d {
            prop_assert!(a.contains(l));
            prop_assert!(b.contains(!l));
        }
    }

    // ------------------------------------------------------------------
    // Theorem 3.3: if diff(a,b) ≠ ∅ and c ∩ diff(a,b) ≠ ∅ then diff(c,b) ≠ ∅.
    // ------------------------------------------------------------------

    #[test]
    fn theorem_3_3_diff_propagates_through_intersection(
        a in arb_cube(),
        b in arb_cube(),
        c in arb_cube(),
    ) {
        let dab = a.diff(&b);
        if !dab.is_empty() && !c.intersection(&dab).is_empty() {
            prop_assert!(!c.diff(&b).is_empty());
        }
    }

    // ------------------------------------------------------------------
    // The paper's candidate construction (Equation 6): c3 = c2 ∪ {l}, l ∈ diff(b, t)
    // satisfies  c3 ∧ t = ⊥  (Eq. 2),  c3 ⊆ b when c2 ⊆ b (Eq. 3),  c2 ⊆ c3 (Eq. 4).
    // ------------------------------------------------------------------

    #[test]
    fn equation_6_candidate_properties(
        b in arb_nonempty_consistent_cube(),
        t in arb_nonempty_consistent_cube(),
        keep in prop::collection::vec(any::<bool>(), 10),
    ) {
        let ds = b.diff(&t);
        prop_assume!(!ds.is_empty());
        // Build a parent cube c2 ⊆ b by dropping some literals of b.
        let mask: Vec<bool> = b.lits().iter().enumerate()
            .map(|(i, _)| keep.get(i).copied().unwrap_or(true))
            .collect();
        let c2 = b.retain_by_mask(&mask);
        for l in &ds {
            let c3 = c2.with_lit(l);
            // Eq. 4: c2 ⊆ c3.
            prop_assert!(c2.subsumes(&c3));
            // Eq. 3: c3 ⊆ b (so b ⇒ c3).
            prop_assert!(c3.subsumes(&b));
            // Eq. 2: c3 ∧ t = ⊥, via Theorem 3.2 (diff non-empty).
            prop_assert!(!c3.diff(&t).is_empty());
            // And semantically: no assignment satisfies both c3 and t.
            let compatible = all_assignments()
                .any(|asg| asg.satisfies_cube(&c3) && asg.satisfies_cube(&t));
            prop_assert!(!compatible);
        }
    }

    // ------------------------------------------------------------------
    // Clause / CNF / assignment interplay
    // ------------------------------------------------------------------

    #[test]
    fn clause_negation_flips_evaluation(
        c in arb_consistent_cube(),
        asg in arb_total_assignment(),
    ) {
        let clause = c.negate();
        // Under a total assignment the cube and its negated clause always have
        // opposite truth values.
        if let (Some(cube_val), Some(clause_val)) = (asg.eval_cube(&c), asg.eval_clause(&clause)) {
            prop_assert_ne!(cube_val, clause_val);
        } else {
            // Total assignment over MAX_VAR vars: both must be determined.
            prop_assert!(c.max_var().map(|v| v.index() >= MAX_VAR as usize).unwrap_or(false));
        }
    }

    #[test]
    fn cnf_eval_matches_clausewise_eval(
        clauses in prop::collection::vec(
            prop::collection::vec(arb_lit(), 1..4).prop_map(Clause::from_lits), 0..6),
        asg in arb_total_assignment(),
    ) {
        let cnf = Cnf::from_clauses(clauses.clone());
        let expected = clauses.iter().map(|c| asg.eval_clause(c)).try_fold(true, |acc, v| {
            v.map(|v| acc && v)
        });
        prop_assert_eq!(cnf.eval(&asg), expected);
    }

    #[test]
    fn assignment_projection_satisfies_cube(asg in arb_total_assignment()) {
        let vars: Vec<Var> = (0..MAX_VAR).map(Var::new).collect();
        let cube = asg.to_cube(vars);
        prop_assert!(asg.satisfies_cube(&cube));
        prop_assert!(!cube.is_contradictory());
    }
}
