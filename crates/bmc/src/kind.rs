//! k-induction.

use crate::Bmc;
use plic3_logic::Lit;
use plic3_sat::{FaultPlan, ResourceBudget, SatResult, Solver, StopFlag};
use plic3_ts::{Trace, TransitionSystem, Unroller};
use std::fmt;

/// The verdict of a k-induction run.
#[derive(Clone, Debug, PartialEq)]
pub enum KInductionResult {
    /// The property is `k`-inductive (and therefore holds).
    Safe {
        /// The induction depth at which the step case became unsatisfiable.
        k: usize,
    },
    /// A counterexample was found by the base case.
    Unsafe {
        /// The violating execution.
        trace: Trace,
        /// Length of the counterexample.
        depth: usize,
    },
    /// Neither case closed within the bound (k-induction without strengthening
    /// is incomplete, so this is a common outcome).
    Unknown {
        /// The largest induction depth that was tried.
        bound: usize,
    },
}

impl KInductionResult {
    /// Returns `true` if the property was proved.
    pub fn is_safe(&self) -> bool {
        matches!(self, KInductionResult::Safe { .. })
    }

    /// Returns `true` if a counterexample was found.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, KInductionResult::Unsafe { .. })
    }
}

impl fmt::Display for KInductionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KInductionResult::Safe { k } => write!(f, "safe ({k}-inductive)"),
            KInductionResult::Unsafe { depth, .. } => write!(f, "unsafe at depth {depth}"),
            KInductionResult::Unknown { bound } => write!(f, "unknown up to k={bound}"),
        }
    }
}

/// A k-induction engine: interleaves BMC base cases with inductive step cases
/// of increasing depth.
///
/// The step case does not add simple-path (uniqueness) constraints, so the
/// procedure is sound but incomplete: [`KInductionResult::Safe`] and
/// [`KInductionResult::Unsafe`] answers are definitive, `Unknown` is not.
///
/// # Example
///
/// ```
/// use plic3_aig::AigBuilder;
/// use plic3_bmc::{KInduction, KInductionResult};
/// use plic3_ts::TransitionSystem;
///
/// // A latch stuck at 0 with bad = latch: 1-inductive.
/// let mut b = AigBuilder::new();
/// let s = b.latch(Some(false));
/// b.set_latch_next(s, s);
/// b.add_bad(s);
/// let ts = TransitionSystem::from_aig(&b.build());
/// let mut kind = KInduction::new(&ts);
/// assert!(kind.check(5).is_safe());
/// ```
pub struct KInduction<'a> {
    ts: &'a TransitionSystem,
    bmc: Bmc<'a>,
    unroller: Unroller<'a>,
    step_solver: Solver,
    loaded_frames: usize,
}

impl<'a> KInduction<'a> {
    /// Creates a k-induction engine for `ts`.
    pub fn new(ts: &'a TransitionSystem) -> Self {
        KInduction::with_options(ts, false)
    }

    /// [`KInduction::new`] with DRAT proof tracing enabled on both backing
    /// solvers before any clause is loaded. A `Safe { k }` verdict is then
    /// backed by two checkable refutations: the base-case proof under
    /// [`KInduction::base_assumptions_at`]`(k)` and the step-case proof under
    /// [`KInduction::step_assumptions_at`]`(k)`. A no-op (plain `new`) without
    /// the `proof-log` feature of `plic3-sat`.
    pub fn with_proof_tracing(ts: &'a TransitionSystem) -> Self {
        KInduction::with_options(ts, true)
    }

    fn with_options(ts: &'a TransitionSystem, trace_proof: bool) -> Self {
        let unroller = Unroller::new(ts);
        let mut step_solver = Solver::new();
        if trace_proof {
            step_solver.enable_proof_tracing();
        }
        step_solver.ensure_vars(unroller.num_vars_through(0));
        KInduction {
            ts,
            bmc: if trace_proof {
                Bmc::with_proof_tracing(ts)
            } else {
                Bmc::new(ts)
            },
            unroller,
            step_solver,
            loaded_frames: 0,
        }
    }

    /// The base-case (BMC) DRAT proof recorded so far; `None` when tracing is
    /// off or compiled out.
    pub fn base_proof(&self) -> Option<&plic3_sat::Proof> {
        self.bmc.proof()
    }

    /// The step-case DRAT proof recorded so far; `None` when tracing is off
    /// or compiled out.
    pub fn step_proof(&self) -> Option<&plic3_sat::Proof> {
        self.step_solver.proof()
    }

    /// The assumptions of the depth-`k` base-case query (delegates to the
    /// backing BMC engine), for checking [`KInduction::base_proof`].
    pub fn base_assumptions_at(&self, k: usize) -> Vec<Lit> {
        self.bmc.bad_assumptions_at(k)
    }

    /// The assumptions of the depth-`k` step-case query — `k` good
    /// constraint-satisfying states followed by a bad one — exactly as
    /// [`KInduction::step_case_holds`] poses it, for checking
    /// [`KInduction::step_proof`].
    pub fn step_assumptions_at(&self, k: usize) -> Vec<Lit> {
        let mut assumptions: Vec<Lit> = Vec::new();
        for frame in 0..k {
            assumptions.push(!self.unroller.lit_at(frame, self.ts.bad_lit()));
            for &c in self.ts.constraint_lits() {
                assumptions.push(self.unroller.lit_at(frame, c));
            }
        }
        assumptions.extend(self.unroller.bad_assumptions_at(k));
        assumptions
    }

    /// Limits the SAT conflicts spent per query in both the base and the step
    /// solver.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.bmc.set_conflict_budget(budget);
        self.step_solver.set_conflict_budget(budget);
    }

    /// Installs a shared cancellation flag in both the base-case and the
    /// step-case solver; raising it makes [`KInduction::check`] return
    /// [`KInductionResult::Unknown`] promptly.
    pub fn set_stop_flag(&mut self, stop: StopFlag) {
        self.bmc.set_stop_flag(stop.clone());
        self.step_solver.set_stop_flag(stop);
    }

    /// Installs a shared memory budget on both backing solvers (base-case
    /// unroller and step solver); once exhausted, `check` degrades to
    /// [`KInductionResult::Unknown`] instead of growing without bound.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.bmc.set_budget(budget.clone());
        self.step_solver.set_budget(budget);
    }

    /// Installs a fault-injection plan on both backing solvers (inert unless
    /// the `fault-injection` feature is enabled).
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        self.bmc.set_fault_plan(faults.clone());
        self.step_solver.set_fault_plan(faults);
    }

    /// Replaces the SAT search configuration of both the base-case and the
    /// step-case solver (portfolio workers use this to diversify on search
    /// behaviour).
    pub fn set_search_config(&mut self, search: plic3_sat::SearchConfig) {
        self.bmc.set_search_config(search);
        self.step_solver.set_search_config(search);
    }

    fn load_step_frame(&mut self, frame: usize) {
        while self.loaded_frames <= frame {
            let k = self.loaded_frames;
            self.step_solver
                .ensure_vars(self.unroller.num_vars_through(k + 1));
            for clause in self.unroller.trans_clauses(k) {
                self.step_solver.add_clause_ref(&clause);
            }
            self.loaded_frames += 1;
        }
    }

    /// Checks the inductive step case at depth `k`: a path of `k` good states
    /// followed by a bad one. Returns `true` if no such path exists.
    pub fn step_case_holds(&mut self, k: usize) -> Option<bool> {
        self.load_step_frame(k);
        let assumptions = self.step_assumptions_at(k);
        match self.step_solver.solve(&assumptions) {
            SatResult::Unsat => Some(true),
            SatResult::Sat => Some(false),
            SatResult::Unknown => None,
        }
    }

    /// Runs interleaved base and step cases for `k = 0..=max_k`.
    pub fn check(&mut self, max_k: usize) -> KInductionResult {
        for k in 0..=max_k {
            // An interrupted base case must surface as Unknown: concluding
            // Safe from the step case alone would be unsound when depth k was
            // never exhaustively checked.
            match self.bmc.check_depth_status(k) {
                crate::BmcDepthStatus::Unsafe(trace) => {
                    return KInductionResult::Unsafe { trace, depth: k }
                }
                crate::BmcDepthStatus::Clean => {}
                crate::BmcDepthStatus::Unknown => return KInductionResult::Unknown { bound: k },
            }
            match self.step_case_holds(k) {
                Some(true) => return KInductionResult::Safe { k },
                Some(false) => {}
                None => return KInductionResult::Unknown { bound: k },
            }
            // Be a polite portfolio citizen: when racing on fewer cores than
            // workers, hand the core over at depth granularity instead of
            // holding it for a whole scheduler quantum.
            std::thread::yield_now();
        }
        KInductionResult::Unknown { bound: max_k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::{Aig, AigBuilder};

    fn shift_register(n: usize) -> Aig {
        let mut b = AigBuilder::new();
        let cells = b.latches(n, Some(false));
        let zero = b.constant_false();
        for i in 0..n {
            let prev = if i == 0 { zero } else { cells[i - 1] };
            b.set_latch_next(cells[i], prev);
        }
        b.add_bad(cells[n - 1]);
        b.build()
    }

    #[test]
    fn proves_k_inductive_property() {
        // The n-cell zero shift register needs k = n to become inductive
        // without strengthening.
        let aig = shift_register(4);
        let ts = TransitionSystem::from_aig(&aig);
        let mut kind = KInduction::new(&ts);
        match kind.check(10) {
            KInductionResult::Safe { k } => assert!(k <= 4, "k={k}"),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn finds_counterexamples_via_base_case() {
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, 5);
        b.add_bad(bad);
        let aig = b.build();
        let ts = TransitionSystem::from_aig(&aig);
        let mut kind = KInduction::new(&ts);
        match kind.check(10) {
            KInductionResult::Unsafe { trace, depth } => {
                assert_eq!(depth, 5);
                assert!(trace.replay_on_aig(&ts, &aig));
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn interrupted_base_case_reports_unknown_not_safe() {
        // An *unsafe* circuit (counter reaches 5) whose base-case queries are
        // starved by a zero conflict budget: the step case may well hold, but
        // concluding Safe would be unsound — the verdict must be Unknown.
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, 5);
        b.add_bad(bad);
        let ts = TransitionSystem::from_aig(&b.build());
        let mut kind = KInduction::new(&ts);
        kind.set_conflict_budget(Some(0));
        match kind.check(10) {
            KInductionResult::Unknown { .. } => {}
            other => panic!("starved base case must yield unknown, got {other}"),
        }
        // Lifting the budget finds the genuine counterexample.
        kind.set_conflict_budget(None);
        assert!(kind.check(10).is_unsafe());
    }

    #[test]
    fn reports_unknown_when_not_inductive_within_bound() {
        // A wrap-around counter with an unreachable bad value is safe but not
        // k-inductive for small k without simple-path constraints.
        let mut b = AigBuilder::new();
        let state = b.latches(4, Some(false));
        let at9 = b.vec_equals_const(&state, 9);
        let inc = b.vec_increment(&state);
        let zero = b.constant_false();
        for (s, n) in state.iter().zip(&inc) {
            let next = b.ite(at9, zero, *n);
            b.set_latch_next(*s, next);
        }
        let bad = b.vec_equals_const(&state, 12);
        b.add_bad(bad);
        let ts = TransitionSystem::from_aig(&b.build());
        let mut kind = KInduction::new(&ts);
        assert_eq!(kind.check(2), KInductionResult::Unknown { bound: 2 });
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            KInductionResult::Safe { k: 3 }.to_string(),
            "safe (3-inductive)"
        );
        assert_eq!(
            KInductionResult::Unknown { bound: 7 }.to_string(),
            "unknown up to k=7"
        );
    }
}
