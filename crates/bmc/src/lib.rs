//! Bounded model checking and k-induction over PLIC3 transition systems.
//!
//! These engines serve three purposes in the reproduction of *Predicting
//! Lemmas in Generalization of IC3* (DAC 2024):
//!
//! * they are the classical baselines IC3 is compared against in the
//!   introduction of the paper (BMC finds bugs fast but is incomplete;
//!   k-induction proves only inductive-ish properties),
//! * they cross-check the IC3 verdicts in the integration tests (an `Unsafe`
//!   answer must be confirmed by BMC at the trace depth; a `Safe` answer must
//!   not be refuted by BMC up to a reasonable bound),
//! * the benchmark suite uses BMC to calibrate the depth of unsafe instances.
//!
//! # Example
//!
//! ```
//! use plic3_aig::AigBuilder;
//! use plic3_bmc::{Bmc, BmcResult};
//! use plic3_ts::TransitionSystem;
//!
//! let mut b = AigBuilder::new();
//! let s = b.latch(Some(false));
//! b.set_latch_next(s, !s);
//! b.add_bad(s);
//! let ts = TransitionSystem::from_aig(&b.build());
//! let mut bmc = Bmc::new(&ts);
//! assert!(matches!(bmc.check(10), BmcResult::Unsafe { depth: 1, .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmc;
mod kind;

pub use bmc::{Bmc, BmcDepthStatus, BmcResult};
pub use kind::{KInduction, KInductionResult};
