//! Incremental bounded model checking.

use plic3_logic::Cube;
use plic3_sat::{FaultPlan, ResourceBudget, SatResult, SearchConfig, Solver, StopFlag};
use plic3_ts::{Trace, TransitionSystem, Unroller};
use std::fmt;

/// The verdict of a bounded model-checking run.
#[derive(Clone, Debug, PartialEq)]
pub enum BmcResult {
    /// A counterexample of exactly `depth` transition steps was found.
    Unsafe {
        /// The violating execution.
        trace: Trace,
        /// Number of transition steps of the counterexample.
        depth: usize,
    },
    /// No counterexample exists with at most `depth` transition steps.
    NoCounterexample {
        /// The bound that was fully explored.
        depth: usize,
    },
    /// The per-call conflict budget was exhausted.
    Unknown,
}

impl BmcResult {
    /// Returns `true` if a counterexample was found.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, BmcResult::Unsafe { .. })
    }

    /// The counterexample trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            BmcResult::Unsafe { trace, .. } => Some(trace),
            _ => None,
        }
    }
}

/// The outcome of a single-depth query ([`Bmc::check_depth_status`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BmcDepthStatus {
    /// A counterexample of exactly the queried depth exists.
    Unsafe(Trace),
    /// The queried depth is proven free of counterexamples.
    Clean,
    /// The query was interrupted (conflict budget or stop flag): nothing may
    /// be concluded about this depth.
    Unknown,
}

impl fmt::Display for BmcResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcResult::Unsafe { depth, .. } => write!(f, "unsafe at depth {depth}"),
            BmcResult::NoCounterexample { depth } => {
                write!(f, "no counterexample up to depth {depth}")
            }
            BmcResult::Unknown => write!(f, "unknown"),
        }
    }
}

/// An incremental bounded model checker.
///
/// The transition relation is unrolled frame by frame into a single
/// incremental SAT solver; the bad-state check at each depth is posed through
/// assumptions so learnt clauses are shared across depths.
pub struct Bmc<'a> {
    ts: &'a TransitionSystem,
    unroller: Unroller<'a>,
    solver: Solver,
    /// Number of time frames whose combinational logic has been loaded.
    loaded_frames: usize,
}

impl<'a> Bmc<'a> {
    /// Creates a bounded model checker for `ts`, with the initial-state
    /// constraint already asserted at frame 0.
    pub fn new(ts: &'a TransitionSystem) -> Self {
        Bmc::with_options(ts, false)
    }

    /// [`Bmc::new`] with DRAT proof tracing enabled on the unrolling solver
    /// *before* any clause is loaded, so every `Clean`/`NoCounterexample`
    /// answer carries a checkable refutation ([`Bmc::proof`]). A no-op (plain
    /// `new`) without the `proof-log` feature of `plic3-sat`.
    pub fn with_proof_tracing(ts: &'a TransitionSystem) -> Self {
        Bmc::with_options(ts, true)
    }

    fn with_options(ts: &'a TransitionSystem, trace_proof: bool) -> Self {
        let unroller = Unroller::new(ts);
        let mut solver = Solver::new();
        if trace_proof {
            // Must precede clause loading: the checker needs the axioms too.
            solver.enable_proof_tracing();
        }
        solver.ensure_vars(unroller.num_vars_through(0));
        for clause in unroller.init_clauses() {
            solver.add_clause_ref(&clause);
        }
        Bmc {
            ts,
            unroller,
            solver,
            loaded_frames: 0,
        }
    }

    /// The DRAT proof recorded so far (see [`Bmc::with_proof_tracing`]);
    /// `None` when tracing is off or compiled out. After an UNSAT depth
    /// query, checking the proof under [`Bmc::bad_assumptions_at`] for that
    /// depth verifies the "no counterexample at this depth" claim.
    pub fn proof(&self) -> Option<&plic3_sat::Proof> {
        self.solver.proof()
    }

    /// The assumption literals of the depth-`depth` bad-state query, for
    /// checking the recorded proof against exactly what was asked.
    pub fn bad_assumptions_at(&self, depth: usize) -> Vec<plic3_logic::Lit> {
        self.unroller.bad_assumptions_at(depth)
    }

    /// Limits the SAT conflicts spent in each per-depth query; `None` removes
    /// the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }

    /// Installs a shared cancellation flag; raising it makes the current and
    /// every future [`Bmc::check`] call return [`BmcResult::Unknown`] promptly.
    pub fn set_stop_flag(&mut self, stop: StopFlag) {
        self.solver.set_stop_flag(stop);
    }

    /// Installs a shared memory budget: the unrolling solver charges its
    /// clause storage against it and aborts to an unknown verdict once it is
    /// exhausted, instead of growing without bound.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.solver.set_budget(budget);
    }

    /// Installs a fault-injection plan (inert unless the `fault-injection`
    /// feature is enabled).
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        self.solver.set_fault_plan(faults);
    }

    /// Replaces the SAT search configuration of the backing solver (portfolio
    /// workers use this to diversify on search behaviour).
    pub fn set_search_config(&mut self, search: SearchConfig) {
        self.solver.set_search_config(search);
    }

    fn load_frame(&mut self, frame: usize) {
        while self.loaded_frames <= frame {
            let k = self.loaded_frames;
            self.solver
                .ensure_vars(self.unroller.num_vars_through(k + 1));
            for clause in self.unroller.trans_clauses(k) {
                self.solver.add_clause_ref(&clause);
            }
            self.loaded_frames += 1;
        }
    }

    /// Checks whether a bad state is reachable within exactly `depth` steps.
    ///
    /// Returns the counterexample trace if so; `None` means either that no
    /// depth-`depth` counterexample exists *or* that the query was interrupted
    /// (conflict budget / stop flag) — use [`Bmc::check_depth_status`] when
    /// the two must be distinguished. Depths may be queried in any order; the
    /// unrolling is extended on demand.
    pub fn check_depth(&mut self, depth: usize) -> Option<Trace> {
        match self.check_depth_status(depth) {
            BmcDepthStatus::Unsafe(trace) => Some(trace),
            BmcDepthStatus::Clean | BmcDepthStatus::Unknown => None,
        }
    }

    /// [`Bmc::check_depth`] with the interrupted case reported explicitly, so
    /// callers drawing safety conclusions (k-induction) cannot mistake an
    /// exhausted budget for an exhaustively checked depth.
    pub fn check_depth_status(&mut self, depth: usize) -> BmcDepthStatus {
        self.load_frame(depth);
        let assumptions = self.unroller.bad_assumptions_at(depth);
        match self.solver.solve(&assumptions) {
            SatResult::Sat => BmcDepthStatus::Unsafe(self.extract_trace(depth)),
            SatResult::Unsat => BmcDepthStatus::Clean,
            SatResult::Unknown => BmcDepthStatus::Unknown,
        }
    }

    /// Checks depths `0..=max_depth` in order and stops at the first
    /// counterexample.
    pub fn check(&mut self, max_depth: usize) -> BmcResult {
        for depth in 0..=max_depth {
            self.load_frame(depth);
            let assumptions = self.unroller.bad_assumptions_at(depth);
            match self.solver.solve(&assumptions) {
                SatResult::Sat => {
                    return BmcResult::Unsafe {
                        trace: self.extract_trace(depth),
                        depth,
                    }
                }
                SatResult::Unsat => {}
                SatResult::Unknown => return BmcResult::Unknown,
            }
        }
        BmcResult::NoCounterexample { depth: max_depth }
    }

    fn extract_trace(&self, depth: usize) -> Trace {
        let model = |v| self.solver.model_value(v);
        let states: Vec<Cube> = (0..=depth)
            .map(|k| self.unroller.state_cube_at(k, model))
            .collect();
        // One input valuation per transition plus the observation frame at the
        // final step (the bad literal may depend on inputs).
        let inputs: Vec<Cube> = (0..=depth)
            .map(|k| self.unroller.input_cube_at(k, model))
            .collect();
        Trace::new(states, inputs)
    }

    /// The transition system being checked.
    pub fn ts(&self) -> &TransitionSystem {
        self.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::{Aig, AigBuilder};

    fn counter(bits: usize, bad_at: u64) -> Aig {
        let mut b = AigBuilder::new();
        let state = b.latches(bits, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, bad_at);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn finds_counterexample_at_exact_depth() {
        let aig = counter(4, 9);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        match bmc.check(20) {
            BmcResult::Unsafe { trace, depth } => {
                assert_eq!(depth, 9);
                assert_eq!(trace.len(), 9);
                assert!(trace.replay_on_aig(&ts, &aig));
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn reports_clean_bound_when_no_counterexample() {
        let aig = counter(3, 7);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        assert_eq!(bmc.check(5), BmcResult::NoCounterexample { depth: 5 });
        // The same engine can keep going incrementally and find the bug later.
        assert!(bmc.check(7).is_unsafe());
    }

    #[test]
    fn check_depth_is_order_independent() {
        let aig = counter(3, 4);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        assert!(bmc.check_depth(6).is_none());
        assert!(bmc.check_depth(4).is_some());
        assert!(bmc.check_depth(2).is_none());
    }

    #[test]
    fn zero_step_violation_detected() {
        let mut b = AigBuilder::new();
        let l = b.latch(Some(true));
        b.set_latch_next(l, l);
        b.add_bad(l);
        let ts = TransitionSystem::from_aig(&b.build());
        let mut bmc = Bmc::new(&ts);
        assert!(matches!(bmc.check(3), BmcResult::Unsafe { depth: 0, .. }));
    }

    #[test]
    fn input_dependent_bad_requires_right_inputs() {
        // bad = latch ∧ input; latch toggles; reachable at depth 1 with input=1.
        let mut b = AigBuilder::new();
        let x = b.input();
        let l = b.latch(Some(false));
        b.set_latch_next(l, !l);
        let bad = b.and(l, x);
        b.add_bad(bad);
        let aig = b.build();
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        match bmc.check(4) {
            BmcResult::Unsafe { trace, depth } => {
                assert_eq!(depth, 1);
                assert!(
                    trace.replay_on_aig(&ts, &aig),
                    "observation inputs preserved"
                );
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        let aig = counter(4, 12);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        // A zero conflict budget aborts the very first query.
        bmc.set_conflict_budget(Some(0));
        assert_eq!(bmc.check(10), BmcResult::Unknown);
        // Lifting the budget lets the same engine finish the job.
        bmc.set_conflict_budget(None);
        assert!(bmc.check(12).is_unsafe());
    }

    #[test]
    fn display_and_accessors() {
        let aig = counter(2, 3);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        let result = bmc.check(1);
        assert_eq!(result.to_string(), "no counterexample up to depth 1");
        assert!(result.trace().is_none());
        assert_eq!(bmc.ts().num_latches(), 2);
        let unsafe_result = bmc.check(3);
        assert!(unsafe_result.to_string().contains("unsafe at depth 3"));
        assert!(unsafe_result.trace().is_some());
    }
}
